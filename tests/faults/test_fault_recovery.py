"""End-to-end fault recovery: killed resident workers are replaced and
the in-flight split completes by re-dispatch — no hang, no duplicate
results — across the pool layer (thread backend), the dispatch layer,
and the process middleware (real SIGKILLed worker processes).  Also the
admission regression: a call that exhausts its retries and fails must
release its in-flight slot.
"""

from __future__ import annotations

import time

import pytest

from repro.api import ParallelApp, StackSpec
from repro.errors import InjectedFault, WorkerCrashed, WorkerKilled
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.parallel import WorkSplitter


def wait_until(cond, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


class Echo:
    """Doubling worker (farm / pipeline target)."""

    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        return [v * 2 for v in values]


def echo_spec(strategy, **overrides):
    fields = dict(
        target=Echo,
        work="bump",
        splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
        strategy=strategy,
        backend="thread",
    )
    fields.update(overrides)
    return StackSpec(**fields)


class TestPoolKillAndReplace:
    """A killed resident pool activity is replaced and its pulled task
    is re-enqueued — the split completes without even needing a retry
    (no piece was lost, only the activity serving it)."""

    def test_scheduled_pool_kill_farm_split_completes(self):
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="pool", index=0, on_call=1)]
        )
        app = ParallelApp(
            echo_spec(
                "farm",
                strategy_options=dict(resident_pool=True),
                faults=schedule,
            )
        )
        with app:
            app.start()
            assert app.submit([1, 2, 3]).result(timeout=10) == [2, 4, 6]
            pool = app.partition._pool
            assert wait_until(lambda: pool.replacements == 1)
            assert pool.killed == 1
            assert schedule.fired_count() == 1
            # the refilled pool keeps serving
            assert app.submit([4]).result(timeout=10) == [8]
        assert app.in_flight == 0

    def test_scheduled_pool_kill_pipeline_split_completes(self):
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="pool", index=0, on_call=1)]
        )
        app = ParallelApp(
            echo_spec(
                "pipeline",
                strategy_options=dict(resident_pool=True),
                faults=schedule,
            )
        )
        with app:
            app.start()
            # two stages double twice
            assert app.submit([1, 2]).result(timeout=10) == [4, 8]
            pool = app.partition._pool
            assert wait_until(lambda: pool.replacements == 1)
            assert pool.killed == 1
            assert app.submit([3]).result(timeout=10) == [12]
        assert app.in_flight == 0

    def test_explicit_kill_is_replaced(self):
        app = ParallelApp(
            echo_spec("farm", strategy_options=dict(resident_pool=True))
        )
        with app:
            app.start()
            assert app.submit([1]).result(timeout=10) == [2]  # starts pool
            pool = app.partition._pool
            pool.kill(0)
            assert wait_until(lambda: pool.replacements == 1)
            assert pool.killed == 1
            # the replacement resident serves worker 0's pieces
            assert app.submit([5]).result(timeout=10) == [10]


class TestDispatchRetry:
    """Dispatch-site faults re-dispatch to a healthy worker when a
    retry policy is armed, and fail fast when none is."""

    def test_kill_without_retry_fails_the_call(self):
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="dispatch", on_call=1)]
        )
        app = ParallelApp(echo_spec("farm", faults=schedule))
        with app:
            app.start()
            with pytest.raises(WorkerKilled):
                app.submit([1, 2]).result(timeout=10)
            # the deployment is not poisoned
            assert app.submit([3]).result(timeout=10) == [6]
        assert app.in_flight == 0

    def test_kill_with_retry_lands_on_healthy_worker(self):
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="dispatch", on_call=1)]
        )
        app = ParallelApp(
            echo_spec(
                "farm", faults=schedule, retry=RetryPolicy(max_attempts=3)
            )
        )
        with app:
            app.start()
            assert app.submit([1, 2]).result(timeout=10) == [2, 4]
            assert schedule.fired_count() == 1
        assert app.in_flight == 0

    def test_dropped_reply_completed_work_deposits_once(self):
        # drop_reply AFTER the piece ran: the pipeline tail already
        # deposited (keyed), so the failure report finds the result
        # landed and charges nothing — exactly one result, no refeed
        schedule = FaultSchedule(
            [FaultEvent("drop_reply", site="dispatch", on_call=1)]
        )
        app = ParallelApp(
            echo_spec(
                "pipeline", faults=schedule, retry=RetryPolicy(max_attempts=3)
            )
        )
        with app:
            app.start()
            assert app.submit([1, 2]).result(timeout=10) == [4, 8]
            assert schedule.fired_count() == 1
        assert app.in_flight == 0

    def test_pipeline_kill_refeeds_through_head(self):
        # kill BEFORE the piece ran: the collector hands the piece to
        # the refeed hook, which re-enters the head stage on a fresh
        # activity under the originating ticket
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="dispatch", on_call=1)]
        )
        app = ParallelApp(
            echo_spec(
                "pipeline", faults=schedule, retry=RetryPolicy(max_attempts=3)
            )
        )
        with app:
            app.start()
            assert app.submit([1, 2]).result(timeout=10) == [4, 8]
        assert app.in_flight == 0


class TestProcessRespawn:
    """A genuinely SIGKILLed worker process raises ``WorkerCrashed``,
    the middleware refills the export from the parent-side twin, and the
    armed retry completes the split on a healthy worker."""

    def test_proc_kill_respawns_and_split_completes(self):
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="proc", on_call=1)]
        )
        app = ParallelApp(
            echo_spec(
                "farm",
                backend="process",
                faults=schedule,
                retry=RetryPolicy(max_attempts=3),
            )
        )
        with app:
            app.start()
            assert app.submit([1, 2]).result(timeout=30) == [2, 4]
            assert app.middleware.worker_crashes == 1
            assert wait_until(lambda: app.middleware.worker_respawns == 1)
            # the corpse was reaped and a fresh resident stands in
            assert wait_until(lambda: app.backend.live_workers == 2)
            # the refilled worker serves follow-up calls
            assert app.submit([5]).result(timeout=30) == [10]
        assert wait_until(lambda: app.admitted == 0)
        assert wait_until(lambda: app.backend.live_workers == 0)

    def test_proc_crash_without_respawn_or_retry_fails(self):
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="proc", on_call=1)]
        )
        app = ParallelApp(
            echo_spec("farm", backend="process", faults=schedule)
        )
        app.middleware.respawn = False
        with app:
            app.start()
            with pytest.raises(WorkerCrashed):
                app.submit([1, 2]).result(timeout=30)
            assert app.middleware.worker_respawns == 0
        assert wait_until(lambda: app.admitted == 0)


class TestAdmissionSlotRelease:
    """Regression: a call whose retries exhaust (and which therefore
    fails) must release its in-flight admission slot — a leaked slot
    would wedge a ``max_in_flight=1`` deployment forever."""

    def test_exhausted_retries_release_the_slot(self):
        schedule = FaultSchedule(
            [
                FaultEvent("raise_in_piece", site="dispatch", on_call=1),
                FaultEvent("raise_in_piece", site="dispatch", on_call=2),
            ]
        )
        app = ParallelApp(
            echo_spec(
                "farm",
                faults=schedule,
                retry=RetryPolicy(max_attempts=2),
                max_in_flight=1,
                overflow="fail",
            )
        )
        with app:
            app.start()
            doomed = app.submit([1, 2])
            with pytest.raises(InjectedFault, match="injected failure"):
                doomed.result(timeout=10)
            assert schedule.fired_count() == 2  # both attempts consumed
            assert wait_until(lambda: app.admitted == 0), "slot leaked"
            assert app.in_flight == 0
            # the single slot is genuinely free again: the next call is
            # admitted (overflow="fail" would reject it if leaked) and
            # completes normally
            assert app.submit([3]).result(timeout=10) == [6]
        assert wait_until(lambda: app.admitted == 0)
        assert app.in_flight == 0
