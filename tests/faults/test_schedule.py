"""Unit tests for the fault plane: event matching, per-site and
per-(site, index) counters, seeded rate draws, determinism of the
trace, and the ambient install/remove/use plane."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdviceError
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    current_faults,
    fire_fault,
    install_faults,
    remove_faults,
    use_faults,
)


class TestFaultEvent:
    def test_rejects_unknown_kind_and_site(self):
        with pytest.raises(AdviceError, match="unknown fault kind"):
            FaultEvent("explode")
        with pytest.raises(AdviceError, match="unknown fault site"):
            FaultEvent("kill_worker", site="disk")

    def test_rejects_bad_counts_and_delay(self):
        with pytest.raises(AdviceError, match="on_call"):
            FaultEvent("kill_worker", on_call=0)
        with pytest.raises(AdviceError, match="every"):
            FaultEvent("kill_worker", every=0)
        with pytest.raises(AdviceError, match="delay"):
            FaultEvent("delay_reply", delay=-1.0)


class TestExplicitEvents:
    def test_on_call_fires_exactly_once(self):
        schedule = FaultSchedule([FaultEvent("kill_worker", on_call=2)])
        assert schedule.fire("dispatch") is None
        event = schedule.fire("dispatch")
        assert event is not None and event.kind == "kill_worker"
        # consumed: the counter keeps advancing but the event never re-fires
        for _ in range(5):
            assert schedule.fire("dispatch") is None
        assert schedule.fired_count() == 1

    def test_every_fires_periodically(self):
        schedule = FaultSchedule([FaultEvent("drop_reply", every=3)])
        fired = [
            schedule.fire("dispatch") is not None for _ in range(9)
        ]
        assert fired == [False, False, True] * 3

    def test_index_pinned_event_counts_per_worker(self):
        # "kill worker 1's second call" must NOT fire on worker 0's
        # second call, however interleaved the consultations are
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", index=1, on_call=2)]
        )
        assert schedule.fire("dispatch", 0) is None  # w0 #1
        assert schedule.fire("dispatch", 1) is None  # w1 #1
        assert schedule.fire("dispatch", 0) is None  # w0 #2: wrong worker
        event = schedule.fire("dispatch", 1)  # w1 #2: fires
        assert event is not None and event.kind == "kill_worker"

    def test_sites_count_independently(self):
        schedule = FaultSchedule([FaultEvent("kill_worker", site="pool")])
        assert schedule.fire("dispatch") is None  # wrong site
        assert schedule.fire("proc") is None
        assert schedule.fire("pool") is not None

    def test_declaration_order_breaks_ties(self):
        first = FaultEvent("drop_reply", on_call=1)
        second = FaultEvent("kill_worker", on_call=1)
        schedule = FaultSchedule([first, second])
        assert schedule.fire("dispatch").kind == "drop_reply"
        # the loser was not consumed: it fires on the next consultation
        # (its on_call matched consultation 1 only, so it never fires)
        assert schedule.fire("dispatch") is None
        assert second.fired is False


class TestSeededRates:
    def test_same_seed_same_trace(self):
        def run():
            schedule = FaultSchedule(seed=7, rates={"kill_worker": 0.3})
            for i in range(50):
                schedule.fire("dispatch", i % 4)
            return schedule.trace_snapshot()

        first, second = run(), run()
        assert first == second
        assert len(first) > 0  # 30% over 50 draws: statistically certain

    def test_different_seeds_diverge(self):
        def run(seed):
            schedule = FaultSchedule(seed=seed, rates={"drop_reply": 0.5})
            for _ in range(40):
                schedule.fire("dispatch")
            return schedule.trace_snapshot()

        assert run(1) != run(2)

    def test_rates_reject_unknown_kind(self):
        with pytest.raises(AdviceError, match="unknown fault kind"):
            FaultSchedule(rates={"meltdown": 0.5})

    def test_trace_rows_are_plain_data(self):
        schedule = FaultSchedule([FaultEvent("kill_worker", on_call=1)])
        schedule.fire("dispatch", 2)
        row = schedule.trace_snapshot()[0]
        assert row == [0, "dispatch", 2, 1, "kill_worker"]


class TestAmbientPlane:
    def test_fire_fault_without_schedule_is_none(self):
        assert current_faults() is None
        assert fire_fault("dispatch") is None

    def test_install_and_remove(self):
        schedule = FaultSchedule([FaultEvent("drop_reply", on_call=1)])
        token = install_faults(schedule)
        try:
            assert current_faults() is schedule
            assert fire_fault("dispatch").kind == "drop_reply"
        finally:
            remove_faults(token)
        assert current_faults() is None
        remove_faults(token)  # idempotent

    def test_use_faults_nests_innermost_wins(self):
        outer = FaultSchedule(name="outer")
        inner = FaultSchedule(name="inner")
        with use_faults(outer):
            assert current_faults() is outer
            with use_faults(inner):
                assert current_faults() is inner
            assert current_faults() is outer
        assert current_faults() is None

    def test_use_faults_none_is_passthrough(self):
        with use_faults(None) as token:
            assert token is None
            assert current_faults() is None

    def test_plane_is_visible_from_other_threads(self):
        # the reason the plane is process-global: pool residents and
        # spawned activities never share the installing thread
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="pool", on_call=1)]
        )
        seen: list = []
        with use_faults(schedule):
            thread = threading.Thread(
                target=lambda: seen.append(fire_fault("pool", 0))
            )
            thread.start()
            thread.join(timeout=5)
        assert seen and seen[0].kind == "kill_worker"
