"""The tenant plane wired through StackSpec/ParallelApp: spec
validation, cross-app capacity, grant↔slot linkage, scheduler-level
shedding of a live call, and the stats() surfaces."""

from __future__ import annotations

import threading

import pytest

from repro.api import ParallelApp, StackSpec
from repro.errors import AdmissionRejected, CallShed, DeploymentError
from repro.runtime import ThreadBackend
from repro.tenancy import ClusterScheduler


class Echo:
    """Identity worker (optionally gated to park calls in flight)."""

    gate: "threading.Event | None" = None

    def __init__(self):
        pass

    def handle(self, value):
        if Echo.gate is not None:
            Echo.gate.wait(timeout=10)
        return value


def plain_spec(**overrides):
    fields = dict(
        target=Echo,
        work="handle",
        strategy="none",
        backend="thread",
        concurrency=False,
    )
    fields.update(overrides)
    return StackSpec(**fields)


def make_scheduler(capacity, **tenants):
    sched = ClusterScheduler(capacity=capacity, backend=ThreadBackend())
    for name, kwargs in tenants.items():
        sched.tenant(name, **kwargs)
    return sched


class TestSpecValidation:
    def test_tenant_and_scheduler_come_together(self):
        with pytest.raises(DeploymentError, match="come together"):
            plain_spec(tenant="gold").validate()
        with pytest.raises(DeploymentError, match="come together"):
            plain_spec(scheduler=make_scheduler(2, gold={})).validate()

    def test_scheduler_is_duck_checked(self):
        with pytest.raises(DeploymentError, match="ClusterScheduler-like"):
            plain_spec(tenant="gold", scheduler=object()).validate()

    def test_unknown_tenant_fails_at_construction(self):
        sched = make_scheduler(2, gold={})
        with pytest.raises(DeploymentError, match="unknown tenant 'silver'"):
            ParallelApp(plain_spec(tenant="silver", scheduler=sched))

    def test_builder_sets_the_tenant_plane(self):
        sched = make_scheduler(2, gold={})
        app = (
            ParallelApp.of(Echo)
            .work("handle")
            .strategy("none")
            .concurrency(False)
            .backend("thread")
            .tenant("gold", sched)
            .build()
        )
        assert app.tenant == "gold"
        assert app.scheduler is sched


class TestCrossAppCapacity:
    def test_two_apps_share_one_slot_table(self):
        # both tenants overflow 'fail': the THIRD in-flight call across
        # the two apps is rejected by the cluster, not by either app's
        # (unbounded) own admission table
        Echo.gate = threading.Event()
        sched = make_scheduler(
            2, gold={"overflow": "fail"}, silver={"overflow": "fail"}
        )
        gold = ParallelApp(plain_spec(tenant="gold", scheduler=sched))
        silver = ParallelApp(plain_spec(tenant="silver", scheduler=sched))
        try:
            with gold, silver:
                gold.start()
                silver.start()
                f1 = gold.submit(1)
                f2 = silver.submit(2)
                with pytest.raises(AdmissionRejected, match="shared"):
                    gold.submit(3)
                assert sched.stats()["in_use"] == 2
                Echo.gate.set()
                assert f1.result() == 1
                assert f2.result() == 2
            assert sched.stats()["in_use"] == 0
            assert sched.stats()["tenants"]["gold"]["rejected"] == 1
        finally:
            Echo.gate = None

    def test_grant_releases_exactly_once_with_the_slot(self):
        sched = make_scheduler(1, gold={"overflow": "fail"})
        app = ParallelApp(plain_spec(tenant="gold", scheduler=sched))
        with app:
            app.start()
            for value in range(5):  # sequential reuse of the one slot
                assert app.submit(value).result() == value
        stats = sched.stats()["tenants"]["gold"]
        assert stats["admitted_total"] == 5
        assert sched.stats()["in_use"] == 0

    def test_rejected_admission_refunds_the_grant(self):
        # the DEPLOYMENT admission (max_in_flight=1, fail) rejects while
        # the cluster would admit: the grant must be refunded
        Echo.gate = threading.Event()
        sched = make_scheduler(4, gold={"overflow": "fail"})
        app = ParallelApp(
            plain_spec(
                tenant="gold",
                scheduler=sched,
                max_in_flight=1,
                overflow="fail",
            )
        )
        try:
            with app:
                app.start()
                first = app.submit(1)
                with pytest.raises(AdmissionRejected, match="in flight"):
                    app.submit(2)
                assert sched.stats()["in_use"] == 1  # refunded, not leaked
                Echo.gate.set()
                assert first.result() == 1
            assert sched.stats()["in_use"] == 0
        finally:
            Echo.gate = None


class TestSchedulerShed:
    def test_cluster_shed_cancels_the_live_call(self):
        Echo.gate = threading.Event()
        sched = make_scheduler(1, hot={"overflow": "shed-oldest"})
        app = ParallelApp(plain_spec(tenant="hot", scheduler=sched))
        try:
            with app:
                app.start()
                victim = app.submit(1)
                fresh = app.submit(2)
                Echo.gate.set()
                with pytest.raises(CallShed, match="shed to admit"):
                    victim.result(timeout=10)
                assert fresh.result(timeout=10) == 2
            assert sched.stats()["tenants"]["hot"]["shed"] == 1
            assert sched.stats()["in_use"] == 0
        finally:
            Echo.gate = None


class TestStatsSurfaces:
    def test_app_stats_snapshot(self):
        app = ParallelApp(plain_spec(max_in_flight=3, overflow="fail"))
        with app:
            app.start()
            app.submit(1).result()
            stats = app.stats()
        assert stats["limit"] == 3
        assert stats["policy"] == "fail"
        assert stats["admitted"] == 0
        assert stats["admitted_total"] == 1
        assert stats["rejected"] == 0
        assert "tenant" not in stats

    def test_app_stats_names_its_tenant(self):
        sched = make_scheduler(2, gold={})
        app = ParallelApp(plain_spec(tenant="gold", scheduler=sched))
        assert app.stats()["tenant"] == "gold"

    def test_controller_stats_feed_scheduler_observation(self):
        sched = make_scheduler(2, gold={})
        app = ParallelApp(
            plain_spec(tenant="gold", scheduler=sched, name="gold-app")
        )
        with app:
            app.start()
            app.submit(7).result()
            sched.observe_admission(app.stats())
        seen = sched.stats()["deployments"]["gold-app"]
        assert seen["admitted_total"] == 1
