"""Fairness and starvation-freedom under overload, on virtual time.

These are the scenario-level guarantees the tenancy layer exists for:

* with every tenant persistently backlogged, the cluster's *grant*
  shares track the configured weights (within 10%) no matter how
  skewed the offered load is — grants are the capacity allocation the
  stride queue actually controls (under extreme overload a FIFO
  waiter is near its deadline by the time it is granted, so raw
  completion counts alone under-measure fairness);
* a cold tenant with reserved slots and high priority observes zero
  failures even while a hot, heavily-weighted, low-priority neighbour
  is shedding most of its own traffic — starvation-freedom is
  structural: the reserve guarantees the first slot, and shed-mode
  neighbours donate recycled slots whenever a higher-priority tenant
  is parked.

Everything runs on the sim backend: minutes of cluster time replay in
well under a second of wall time, and the seeds make every number
deterministic.  ``make stress-tenancy`` reruns this module 5x.
"""

from __future__ import annotations

from repro.api import ParallelApp, StackSpec
from repro.runtime.simbackend import SimBackend
from repro.sim import Simulator, current_simulator
from repro.tenancy import ClusterScheduler
from repro.traffic import (
    PercentileRecorder,
    PoissonArrivals,
    TenantPopulation,
    TrafficGenerator,
    open_loop,
)


class VirtualService:
    """Servant whose work is a pure virtual-time hold."""

    def __init__(self):
        pass

    def handle(self, user, cost):
        current_simulator().hold(cost)
        return user


def deploy_apps(backend, sched, tenants):
    """One partition-less sim-backend app per tenant, sharing the
    scheduler (the deployment admission stays unbounded: the cluster
    table is the binding constraint)."""
    apps = {}
    for name in tenants:
        app = ParallelApp(
            StackSpec(
                target=VirtualService,
                work="handle",
                strategy="none",
                concurrency=False,
                backend=backend,
                tenant=name,
                scheduler=sched,
                name=f"svc-{name}",
            )
        )
        app.deploy()
        app.start()
        apps[name] = app
    return apps


def drive(sim, generators, apps, recorder, timeout, horizon):
    """Run several generators' open loops to completion in one sim."""

    def handle(arrival):
        recorder.offered(arrival.tenant)
        started = sim.now
        exc = None
        try:
            apps[arrival.tenant].submit(
                arrival.user, arrival.cost, timeout=timeout
            ).result()
        except Exception as caught:  # noqa: BLE001 - classified
            exc = caught
        recorder.observe(arrival.tenant, exc, sim.now - started)

    for generator in generators:
        generator.run(sim, handle, horizon=horizon)
    sim.run()
    return recorder.report()


def test_grant_shares_track_weights_under_overload():
    # ~10x overload: capacity serves 10 calls/s (10 slots, 1s service),
    # offered load is 100/s with a Zipf-skewed tenant mix (gold ~69%,
    # silver ~20%, bronze ~11% of traffic).  Cluster grants must follow
    # the WEIGHTS 5:3:2 — not the offered skew.
    sim = Simulator()
    backend = SimBackend(sim)
    weights = {"gold": 5.0, "silver": 3.0, "bronze": 2.0}
    sched = ClusterScheduler(capacity=10, backend=backend, name="fairness")
    for name, weight in weights.items():
        sched.tenant(name, weight=weight, overflow="block")
    apps = deploy_apps(backend, sched, weights)
    generator = TrafficGenerator(
        PoissonArrivals(rate=100.0, seed=42),
        TenantPopulation(
            {"gold": 0.001, "silver": 0.05, "bronze": 0.949},
            users=1_000_000,
            exponent=1.1,
        ),
        seed=43,
        service=lambda rng: 1.0,
    )
    recorder = PercentileRecorder()
    report = open_loop(
        sim,
        generator,
        apps,
        recorder,
        timeout=2.5,
        horizon=8.0,
    )
    tenants = sched.stats()["tenants"]
    granted = {name: tenants[name]["admitted_total"] for name in weights}
    total = sum(granted.values())
    assert total > 80, report  # the cluster kept its slots busy
    total_weight = sum(weights.values())
    for name, weight in weights.items():
        share = granted[name] / total
        expected = weight / total_weight
        assert abs(share - expected) <= 0.10 * expected, (
            name,
            share,
            expected,
            granted,
        )
    # every tenant made real progress, not just bookkeeping
    for name in weights:
        assert report[name]["completed"] > 0, report
    # overload was real: far more was offered than granted, and the
    # excess surfaced as deadline-bounded rejections, not hangs
    assert recorder.total("offered") > 5 * total
    assert recorder.total("rejected") > 0
    assert sched.stats()["in_use"] == 0  # everything released


def test_reserved_high_priority_tenant_is_never_starved():
    # capacity 4: "paid" reserves 1 slot (priority 5, weight 1);
    # "free" (priority 0, weight 10, shed-oldest) floods the shared 3
    # slots at ~12x their throughput.  Every paid request must complete.
    sim = Simulator()
    backend = SimBackend(sim)
    sched = ClusterScheduler(capacity=4, backend=backend, name="starve")
    sched.tenant("paid", weight=1.0, reserved=1, priority=5)
    sched.tenant("free", weight=10.0, priority=0, overflow="shed-oldest")
    apps = deploy_apps(backend, sched, ("paid", "free"))
    generators = [
        TrafficGenerator(
            PoissonArrivals(rate=0.5, seed=7),
            TenantPopulation({"paid": 1.0}, users=1_000, exponent=1.1),
            seed=8,
            service=lambda rng: 1.0,
        ),
        TrafficGenerator(
            PoissonArrivals(rate=36.0, seed=9),
            TenantPopulation({"free": 1.0}, users=1_000_000, exponent=1.1),
            seed=10,
            service=lambda rng: 1.0,
        ),
    ]
    recorder = PercentileRecorder()
    report = drive(
        sim, generators, apps, recorder, timeout=2.5, horizon=10.0
    )
    paid = report["paid"]
    assert paid["offered"] >= 3
    assert paid["completed"] == paid["offered"], report
    assert paid["shed"] == 0
    assert paid["rejected"] == 0
    assert paid["deadline_missed"] == 0
    assert paid["p99"] is not None and paid["p99"] <= 2.0
    # the hot neighbour genuinely overloaded and paid the price itself
    free = report["free"]
    assert free["offered"] > 300
    assert free["shed"] > 100, report
    assert free["completed"] > 0
    assert sched.stats()["tenants"]["free"]["shed"] == free["shed"]
    assert sched.stats()["in_use"] == 0


def test_low_priority_hot_tenant_blocked_queue_variant():
    # same shape but the hot tenant BLOCKS instead of shedding: the
    # cold tenant's reserve still carries it through untouched, and the
    # hot tenant's excess drains as deadline-bounded rejections
    sim = Simulator()
    backend = SimBackend(sim)
    sched = ClusterScheduler(capacity=3, backend=backend, name="starve2")
    sched.tenant("paid", weight=1.0, reserved=1, priority=3)
    sched.tenant("free", weight=8.0, priority=0, overflow="block")
    apps = deploy_apps(backend, sched, ("paid", "free"))
    generators = [
        TrafficGenerator(
            PoissonArrivals(rate=0.4, seed=11),
            TenantPopulation({"paid": 1.0}, users=100, exponent=1.1),
            seed=12,
            service=lambda rng: 1.0,
        ),
        TrafficGenerator(
            PoissonArrivals(rate=20.0, seed=13),
            TenantPopulation({"free": 1.0}, users=100_000, exponent=1.1),
            seed=14,
            service=lambda rng: 1.0,
        ),
    ]
    recorder = PercentileRecorder()
    report = drive(
        sim, generators, apps, recorder, timeout=2.0, horizon=8.0
    )
    paid = report["paid"]
    assert paid["offered"] >= 2
    assert paid["completed"] == paid["offered"], report
    assert paid["rejected"] == 0 and paid["deadline_missed"] == 0
    free = report["free"]
    assert free["rejected"] > 50, report  # overload drained as rejections
    assert sched.stats()["in_use"] == 0
