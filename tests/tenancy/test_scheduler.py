"""ClusterScheduler units: quotas, priorities, stride fairness, overflow
policies, placement feedback — all on the thread backend (no simulator
needed; hand-offs are exercised by releasing held grants directly)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionRejected, CallShed, DeploymentError
from repro.runtime import ThreadBackend
from repro.tenancy import ClusterScheduler, PlacementFeedback, Tenant


def make(capacity, **tenants):
    sched = ClusterScheduler(capacity=capacity, backend=ThreadBackend())
    for name, kwargs in tenants.items():
        sched.tenant(name, **kwargs)
    return sched


class TestRegistration:
    def test_tenant_validation(self):
        with pytest.raises(DeploymentError, match="weight must be > 0"):
            Tenant("a", weight=0)
        with pytest.raises(DeploymentError, match="reserved must be >= 0"):
            Tenant("a", reserved=-1)
        with pytest.raises(DeploymentError, match="unknown overflow"):
            Tenant("a", overflow="explode")

    def test_reserves_must_fit_capacity(self):
        sched = make(4, a={"reserved": 3})
        with pytest.raises(DeploymentError, match="exceeds capacity"):
            sched.tenant("b", reserved=2)

    def test_duplicate_and_unknown_tenants(self):
        sched = make(2, a={})
        with pytest.raises(DeploymentError, match="already registered"):
            sched.tenant("a")
        with pytest.raises(DeploymentError, match="unknown tenant 'nope'"):
            sched.acquire("nope")


class TestQuotas:
    def test_reserved_slots_are_exclusive(self):
        # capacity 3, 1 reserved for "paid": "free" can only ever hold 2
        sched = make(3, paid={"reserved": 1}, free={"overflow": "fail"})
        g1, g2 = sched.acquire("free"), sched.acquire("free")
        with pytest.raises(AdmissionRejected):
            sched.acquire("free")
        # the reserved slot still admits its owner instantly
        paid = sched.acquire("paid")
        stats = sched.stats()
        assert stats["in_use"] == 3
        assert stats["shared_in_use"] == 2
        for grant in (g1, g2, paid):
            grant.release()
        assert sched.stats()["in_use"] == 0

    def test_burst_caps_a_tenant_below_pool_capacity(self):
        sched = make(8, capped={"burst": 2, "overflow": "fail"})
        sched.acquire("capped"), sched.acquire("capped")
        with pytest.raises(AdmissionRejected):
            sched.acquire("capped")

    def test_release_is_idempotent(self):
        sched = make(1, a={"overflow": "fail"})
        grant = sched.acquire("a")
        grant.release()
        grant.release()  # must not free a phantom slot
        second = sched.acquire("a")
        with pytest.raises(AdmissionRejected):
            sched.acquire("a")
        second.release()


class TestShedOldest:
    def test_sheds_the_tenants_own_oldest_grant(self):
        sched = make(2, hot={"overflow": "shed-oldest"})
        oldest = sched.acquire("hot", name="first")
        sched.acquire("hot", name="second")
        sched.acquire("hot", name="third")  # full: sheds "first"
        assert oldest.cancelled
        assert isinstance(oldest.cancel_cause, CallShed)
        assert sched.stats()["tenants"]["hot"]["shed"] == 1
        assert sched.stats()["tenants"]["hot"]["held"] == 2

    def test_never_sheds_another_tenants_work(self):
        # the pool is full of "other"'s calls; "hot" owns nothing to
        # shed, so isolation demands rejection — not a cross-tenant kill
        sched = make(
            2, other={"overflow": "fail"}, hot={"overflow": "shed-oldest"}
        )
        held = [sched.acquire("other"), sched.acquire("other")]
        with pytest.raises(AdmissionRejected, match="no sheddable call"):
            sched.acquire("hot")
        assert not any(grant.cancelled for grant in held)

    def test_shed_forwards_to_attached_slot(self):
        class FakeSlot:
            def __init__(self):
                self.cancelled_with = None

            def cancel(self, exc):
                self.cancelled_with = exc

        sched = make(1, hot={"overflow": "shed-oldest"})
        grant = sched.acquire("hot")
        slot = FakeSlot()
        grant.attach_slot(slot)
        sched.acquire("hot")
        assert isinstance(slot.cancelled_with, CallShed)

    def test_cancel_before_attach_forwards_at_attach_time(self):
        class FakeSlot:
            def __init__(self):
                self.cancelled_with = None

            def cancel(self, exc):
                self.cancelled_with = exc

        sched = make(1, hot={"overflow": "shed-oldest"})
        grant = sched.acquire("hot")
        sched.acquire("hot")  # sheds before the slot ever attached
        slot = FakeSlot()
        grant.attach_slot(slot)
        assert isinstance(slot.cancelled_with, CallShed)


class TestHandoffOrdering:
    """Hand-off policy, observed by releasing grants one at a time and
    watching which parked tenant wins.  Waiters park in real threads."""

    def parked(self, sched, tenant, results):
        def submit():
            try:
                grant = sched.acquire(tenant)
                results.append((tenant, grant))
            except AdmissionRejected:  # pragma: no cover - not expected
                results.append((tenant, None))

        thread = threading.Thread(target=submit, daemon=True)
        thread.start()
        return thread

    def wait_for_waiters(self, sched, count):
        for _ in range(2000):
            stats = sched.stats()
            if sum(t["waiting"] for t in stats["tenants"].values()) >= count:
                return
            threading.Event().wait(0.001)
        raise AssertionError("waiters never parked")

    def test_priority_wins_shared_handoffs(self):
        sched = make(
            1, low={"priority": 0}, high={"priority": 5}
        )
        held = sched.acquire("low")
        results: list = []
        t_low = self.parked(sched, "low", results)
        self.wait_for_waiters(sched, 1)
        t_high = self.parked(sched, "high", results)
        self.wait_for_waiters(sched, 2)
        held.release()
        t_high.join(timeout=5)
        assert results and results[0][0] == "high"
        results[0][1].release()
        t_low.join(timeout=5)

    def test_reserve_outranks_priority(self):
        # "guaranteed" is below its reserve: it beats a higher-priority
        # shared-pool waiter to the freed slot
        sched = make(
            2,
            loud={"priority": 9},
            guaranteed={"priority": 0, "reserved": 1},
        )
        # fill: loud takes the shared slot, guaranteed's reserve is held
        # by its own first call
        shared = sched.acquire("loud")
        reserve = sched.acquire("guaranteed")
        results: list = []
        t_loud = self.parked(sched, "loud", results)
        self.wait_for_waiters(sched, 1)
        t_guaranteed = self.parked(sched, "guaranteed", results)
        self.wait_for_waiters(sched, 2)
        reserve.release()  # frees capacity; guaranteed is below reserve
        t_guaranteed.join(timeout=5)
        assert results and results[0][0] == "guaranteed"
        shared.release()
        t_loud.join(timeout=5)

    def test_shed_donates_the_slot_to_a_higher_priority_waiter(self):
        # a shed-mode tenant never *releases* under backlog — it swaps
        # calls in place.  When an outranking tenant is parked, the
        # recycled slot must re-enter the fair queue instead, and the
        # shedding call itself is rejected.
        sched = make(
            2,
            hot={"overflow": "shed-oldest", "priority": 0},
            vip={"priority": 5},
        )
        oldest = sched.acquire("hot", name="old")
        sched.acquire("hot", name="newer")
        results: list = []
        thread = self.parked(sched, "vip", results)
        self.wait_for_waiters(sched, 1)
        with pytest.raises(AdmissionRejected, match="donated"):
            sched.acquire("hot", name="greedy")
        thread.join(timeout=5)
        assert oldest.cancelled  # the shed itself still happened
        assert results and results[0][0] == "vip"
        assert sched.stats()["tenants"]["hot"]["shed"] == 1
        assert sched.stats()["tenants"]["hot"]["rejected"] == 1

    def test_shed_recycles_in_place_without_outranking_waiters(self):
        # an equal-priority waiter does NOT capture the recycled slot:
        # the shed-mode tenant is churning its own quota, not stealing
        sched = make(
            2,
            hot={"overflow": "shed-oldest", "priority": 1},
            peer={"priority": 1},
        )
        first = sched.acquire("hot", name="a")
        second = sched.acquire("hot", name="b")
        results: list = []
        thread = self.parked(sched, "peer", results)
        self.wait_for_waiters(sched, 1)
        third = sched.acquire("hot", name="c")
        assert first.cancelled
        assert not results  # peer is still parked
        for grant in (second, third):
            grant.release()
        thread.join(timeout=5)
        assert results and results[0][0] == "peer"
        results[0][1].release()

    def test_stride_shares_converge_to_weights(self):
        # one slot, two equal-priority tenants with 3:1 weights, both
        # permanently backlogged: count hand-offs over many cycles
        sched = make(1, heavy={"weight": 3.0}, light={"weight": 1.0})
        held = sched.acquire("heavy")
        order: list = []
        lock = threading.Lock()
        rounds = 40
        done = threading.Semaphore(0)

        def submitter(tenant):
            grant = sched.acquire(tenant)
            with lock:
                order.append(tenant)
            grant.release()
            done.release()

        threads = []
        for _ in range(rounds):
            for tenant in ("heavy", "light"):
                thread = threading.Thread(
                    target=submitter, args=(tenant,), daemon=True
                )
                thread.start()
                threads.append(thread)
        self.wait_for_waiters(sched, 2 * rounds)
        held.release()  # the single slot now cycles through the backlog
        for _ in range(2 * rounds):
            assert done.acquire(timeout=5)
        for thread in threads:
            thread.join(timeout=5)
        assert len(order) == 2 * rounds
        # while BOTH tenants stayed backlogged (the first `rounds`
        # hand-offs at most), stride scheduling allocates 3:1 — the
        # heavy tenant gets ~30 of the first 40 grants, within O(1)
        window = order[:rounds]
        heavy_share = window.count("heavy") / len(window)
        assert abs(heavy_share - 0.75) <= 0.05, window


class TestPlacement:
    def snapshot(self, *utils):
        return {
            "nodes": [
                {"node": i, "cores": 2, "utilisation": u}
                for i, u in enumerate(utils)
            ]
        }

    def test_suggest_prefers_least_utilised(self):
        feedback = PlacementFeedback()
        assert feedback.suggest("t") is None  # before any observation
        feedback.observe(self.snapshot(0.9, 0.1, 0.5))
        assert feedback.suggest("t") == 1

    def test_repeated_hints_spread_a_hot_tenant(self):
        feedback = PlacementFeedback()
        feedback.observe(self.snapshot(0.0, 0.0, 0.8))
        picks = [feedback.suggest("hot") for _ in range(4)]
        # pending pressure pushes successive picks off the first node
        assert set(picks[:2]) == {0, 1}
        assert len(set(picks)) >= 2
        assert feedback.assignments("hot") == tuple(picks)

    def test_scheduler_wires_metrics_to_placement(self):
        sched = make(2, a={})
        sched.observe(self.snapshot(0.7, 0.2))
        assert sched.placement_hint("a") == 1
        sched.observe_admission(
            {"name": "app-x", "admitted": 1, "waiting": 0}
        )
        assert sched.stats()["deployments"]["app-x"]["admitted"] == 1
