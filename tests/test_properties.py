"""Property-based tests (hypothesis) on core invariants.

Each property pins an invariant the rest of the system leans on:
determinism of the kernel, conservation in the CPU model, correctness of
partitioned sieving for arbitrary shapes, and the pattern-matching
algebra of the pointcut language.
"""

from __future__ import annotations

import fnmatch
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aop import weave
from repro.aop.signature import ParamsPattern, TypePattern
from repro.aop.weaver import default_weaver
from repro.apps.primes import (
    PrimeFilter,
    SieveWorkload,
    build_sieve_stack,
    primes_up_to,
)
from repro.apps.primes.reference import expected_sieve_output
from repro.middleware.serialize import measure_size
from repro.runtime import Future, ThreadBackend, use_backend
from repro.sim import ProcessorSharingCPU, Simulator, total_rate

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestSieveProperties:
    @COMMON
    @given(
        maximum=st.integers(min_value=100, max_value=4000),
        packs=st.integers(min_value=1, max_value=8),
        filters=st.integers(min_value=1, max_value=5),
        strategy=st.sampled_from(["FarmThreads", "PipeThreads"]),
    )
    def test_partitioned_sieve_equals_reference(
        self, maximum, packs, filters, strategy
    ):
        """Any workload shape × strategy must produce the exact primes."""
        default_weaver.reset()
        workload = SieveWorkload(maximum, packs)
        stack = build_sieve_stack(strategy, workload, filters)
        weave(PrimeFilter)
        try:
            with use_backend(ThreadBackend()):
                with stack.composition.deployed(
                    default_weaver, targets=[PrimeFilter]
                ):
                    prime_filter = PrimeFilter(2, workload.sqrt)
                    result = prime_filter.filter(workload.candidates)
                    if isinstance(result, Future):
                        result = result.result()
        finally:
            default_weaver.reset()
        assert np.array_equal(
            np.sort(np.asarray(result)), expected_sieve_output(maximum)
        )

    @COMMON
    @given(maximum=st.integers(min_value=10, max_value=5000))
    def test_reference_sieve_matches_trial_division(self, maximum):
        primes = primes_up_to(maximum).tolist()
        for candidate in range(2, maximum + 1):
            is_prime = all(
                candidate % d != 0 for d in range(2, math.isqrt(candidate) + 1)
            )
            assert (candidate in primes) == is_prime or candidate > maximum

    @COMMON
    @given(
        maximum=st.integers(min_value=100, max_value=50_000),
        packs=st.integers(min_value=1, max_value=64),
    )
    def test_packs_recombine_to_candidates(self, maximum, packs):
        workload = SieveWorkload(maximum, packs)
        joined = np.concatenate(workload.pack_list())
        assert np.array_equal(joined, workload.candidates)
        assert len(workload.pack_list()) == packs

    @COMMON
    @given(
        maximum=st.integers(min_value=150, max_value=50_000),
        stages=st.integers(min_value=1, max_value=20),
    )
    def test_stage_ranges_partition_base_primes(self, maximum, stages):
        workload = SieveWorkload(maximum, 2)
        ranges = workload.stage_ranges(stages)
        assert len(ranges) == stages
        covered = []
        for lo, hi in ranges:
            covered.extend(int(p) for p in workload.base if lo <= p <= hi)
        assert covered == [int(p) for p in workload.base]


class TestSimProperties:
    @COMMON
    @given(
        plan=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),  # spawn delay
                st.lists(
                    st.floats(min_value=0.0, max_value=2.0),
                    min_size=1,
                    max_size=4,
                ),  # holds
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_kernel_is_deterministic(self, plan):
        def run_once():
            sim = Simulator()
            log = []

            def worker(wid, holds):
                for h in holds:
                    sim.hold(h)
                    log.append((wid, round(sim.now, 9)))

            for wid, (delay, holds) in enumerate(plan):
                sim.spawn(
                    lambda wid=wid, holds=holds: worker(wid, holds), delay=delay
                )
            sim.run()
            return log

        assert run_once() == run_once()

    @COMMON
    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=3.0),  # arrival
                st.floats(min_value=0.01, max_value=5.0),  # work
            ),
            min_size=1,
            max_size=8,
        ),
        cores=st.integers(min_value=1, max_value=4),
        ht=st.floats(min_value=1.0, max_value=1.5),
    )
    def test_processor_sharing_conserves_work(self, jobs, cores, ht):
        """The CPU's busy-time integral equals the total work served, and
        every job takes at least work/speed."""
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=cores, ht_factor=ht)
        spans = {}

        def job(jid, arrival, work):
            sim.hold(arrival)
            start = sim.now
            cpu.execute(work)
            spans[jid] = (start, sim.now)

        for jid, (arrival, work) in enumerate(jobs):
            sim.spawn(lambda jid=jid, a=arrival, w=work: job(jid, a, w))
        sim.run()
        total_work = sum(work for _, work in jobs)
        assert cpu.jobs_completed == len(jobs)
        assert cpu.busy_time == pytest.approx(total_work, rel=1e-6)
        for jid, (arrival, work) in enumerate(jobs):
            start, end = spans[jid]
            assert end - start >= work - 1e-9

    @COMMON
    @given(
        n=st.integers(min_value=1, max_value=50),
        cores=st.integers(min_value=1, max_value=8),
        ht=st.floats(min_value=1.0, max_value=2.0),
    )
    def test_total_rate_monotone_and_bounded(self, n, cores, ht):
        rate = total_rate(n, cores, ht)
        assert 0 < rate <= cores * ht + 1e-9
        assert rate <= total_rate(n + 1, cores, ht) + 1e-9
        if n <= cores:
            assert rate == pytest.approx(n)


class TestPatternProperties:
    NAMES = st.text(
        alphabet=st.sampled_from("abcXYZ_"), min_size=1, max_size=8
    )

    @COMMON
    @given(name=NAMES, pattern=st.text(alphabet=st.sampled_from("abcXYZ_*"), min_size=1, max_size=8))
    def test_type_pattern_agrees_with_fnmatch(self, name, pattern):
        cls = type(name, (), {})
        assert TypePattern(pattern).matches_class(cls) == bool(
            fnmatch.fnmatch(name, pattern)
        )

    @COMMON
    @given(args=st.lists(st.integers() | st.text() | st.booleans(), max_size=5))
    def test_any_params_pattern_matches_everything(self, args):
        assert ParamsPattern.any().matches(tuple(args))

    @COMMON
    @given(
        prefix=st.lists(st.integers(), max_size=3),
        suffix=st.lists(st.text(), max_size=3),
    )
    def test_ellipsis_absorbs_middle(self, prefix, suffix):
        """(int..int, .., str..str) matches prefix+anything+suffix."""
        elements = ["int"] * len(prefix) + [".."] + ["str"] * len(suffix)
        pattern = ParamsPattern(elements)
        middle = (3.5, b"x")
        assert pattern.matches(tuple(prefix) + middle + tuple(suffix))
        assert pattern.matches(tuple(prefix) + tuple(suffix))

    @COMMON
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=20))
    def test_measure_size_superadditive_for_lists(self, values):
        whole = measure_size(values)
        assert whole >= measure_size([])
        if values:
            assert whole > measure_size(values[:-1])


class TestSerializerProperties:
    @COMMON
    @given(
        payload=st.recursive(
            st.integers() | st.text(max_size=8) | st.booleans() | st.none(),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=4), children, max_size=4),
            max_leaves=12,
        )
    )
    def test_clone_is_deep_and_equal(self, payload):
        from repro.middleware.serialize import Serializer

        clone = Serializer().clone(payload)
        assert clone == payload
        if isinstance(payload, (list, dict)) and payload:
            assert clone is not payload
