"""ParallelApp: assembly, futures-first submission, packs, both backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.app import AppBuilder, ParallelApp
from repro.api.registry import STRATEGIES, register_strategy
from repro.api.spec import StackSpec
from repro.apps.primes import PrimeFilter, SieveWorkload, expected_sieve_output
from repro.cluster import paper_testbed
from repro.errors import DeploymentError
from repro.parallel import Concern, ParallelModule, WorkSplitter, farm_module
from repro.parallel.partition import CallPiece
from repro.runtime import Future, FutureGroup
from repro.sim import Simulator

MAX = 10_000
PACKS = 4


class Doubler:
    def __init__(self):
        self.calls = 0

    def handle(self, x):
        self.calls += 1
        return x * 2


def sieve_farm_spec(workload, filters=3, **overrides):
    fields = dict(
        target=PrimeFilter,
        work="filter",
        splitter=workload.farm_splitter(filters),
        strategy="farm",
        backend="thread",
    )
    fields.update(overrides)
    return StackSpec(**fields)


class TestAssembly:
    def test_modules_assembled_by_concern(self):
        workload = SieveWorkload(MAX, PACKS)
        app = ParallelApp(sieve_farm_spec(workload))
        assert app.partition is not None
        assert app.async_aspect is not None
        assert app.composition.by_concern(Concern.PARTITION)
        assert app.composition.by_concern(Concern.CONCURRENCY)

    def test_backend_auto_resolution(self):
        workload = SieveWorkload(MAX, PACKS)
        local = ParallelApp(sieve_farm_spec(workload, backend=None))
        assert local.backend.name == "threads"
        sim = Simulator()
        try:
            distributed = ParallelApp(
                sieve_farm_spec(
                    workload, backend=None, middleware="rmi",
                    cluster=paper_testbed(sim),
                )
            )
            assert distributed.backend.name == "sim"
            assert distributed.sim is sim
        finally:
            sim.shutdown()

    def test_optimisation_aspects_wrapped_as_modules(self):
        from repro.parallel import CommunicationPackingAspect

        workload = SieveWorkload(MAX, PACKS)
        spec = sieve_farm_spec(workload)
        partition_module = STRATEGIES.get("farm")(
            workload.farm_splitter(3), spec.creation_pointcut, spec.work_pointcut
        )
        packing = CommunicationPackingAspect(partition_module.coordinator, 2)
        app = ParallelApp(sieve_farm_spec(workload, optimisations=(packing,)))
        assert app.composition.by_concern(Concern.OPTIMISATION)

    def test_eager_validation_at_construction(self):
        workload = SieveWorkload(MAX, PACKS)
        with pytest.raises(DeploymentError, match="did you mean"):
            ParallelApp(sieve_farm_spec(workload, strategy="frm"))


class TestThreadSubmission:
    def test_submit_returns_future_with_correct_result(self):
        workload = SieveWorkload(MAX, PACKS)
        app = ParallelApp(sieve_farm_spec(workload))
        with app:
            app.start(2, workload.sqrt)
            future = app.submit(workload.candidates)
            assert isinstance(future, Future)
            result = future.result()
        assert np.array_equal(
            np.sort(np.asarray(result)), expected_sieve_output(MAX)
        )

    def test_submit_before_start_raises(self):
        workload = SieveWorkload(MAX, PACKS)
        app = ParallelApp(sieve_farm_spec(workload))
        with app:
            with pytest.raises(DeploymentError, match="app.start"):
                app.submit(workload.candidates)

    def test_submit_failure_delivered_via_future(self):
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      backend="thread")
        )
        with app:
            app.start()
            future = app.submit("not", "valid", "arity")
            with pytest.raises(TypeError):
                future.result()

    def test_map_resolves_per_item_futures_in_order(self):
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      backend="thread")
        )
        with app:
            app.start()
            group = app.map([1, 2, 3])
            assert isinstance(group, FutureGroup)
            assert group.results() == [2, 4, 6]

    def test_map_pack_runs_one_advice_pass_per_pack(self):
        from repro.aop import Aspect, around

        passes = []

        class CountChain(Aspect):
            @around("call(Doubler.handle(..))")
            def count(self, jp):
                passes.append(jp)
                return jp.proceed()

        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      concurrency=False, backend="thread",
                      optimisations=(CountChain(),))
        )
        with app:
            app.start()
            group = app.map([1, 2, 3, 4], pack=2)
            assert group.results() == [2, 4, 6, 8]
        # 4 items in packs of 2 -> exactly 2 chain traversals
        assert len(passes) == 2

    def test_map_pack_routed_on_farm_spec(self):
        # tightened rule: farms route whole packs per worker, so pack
        # submission works on a partitioned spec now
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle",
                      splitter=WorkSplitter(duplicates=2),
                      strategy="farm", backend="thread")
        )
        with app:
            app.start()
            group = app.map([1, 2, 3, 4, 5, 6], pack=2)
            assert group.results() == [2, 4, 6, 8, 10, 12]
        farm = app.partition
        # 3 packs of 2 routed round-robin over 2 workers, whole-pack
        assert farm.dispatches == 3
        # every ticket retired; accounting is per call, not per aspect
        assert app.in_flight == 0

    def test_map_pack_rejected_only_when_unroutable(self):
        # heartbeat's work call is the iteration loop over a shared
        # grid: packs genuinely cannot be routed per worker
        from repro.apps.jacobi import jacobi_spec

        app = ParallelApp(jacobi_spec(blocks=2, backend="thread"))
        with app:
            app.start(12, 12)
            with pytest.raises(DeploymentError, match="not routable"):
                app.map([1, 2], pack=True)

    def test_call_is_synchronous_submit(self):
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      backend="thread")
        )
        with app:
            app.start()
            assert app.call(21) == 42


class TestSimSubmission:
    def test_submit_drives_simulator_from_outside(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        workload = SieveWorkload(MAX, PACKS)
        app = ParallelApp(
            sieve_farm_spec(
                workload, backend="sim", middleware="rmi", cluster=cluster
            )
        )
        try:
            with app:
                app.start(2, workload.sqrt)
                future = app.submit(workload.candidates)
                assert future.resolved  # driven to completion transparently
                result = future.result()
            assert np.array_equal(
                np.sort(np.asarray(result)), expected_sieve_output(MAX)
            )
            assert app.middleware.calls >= PACKS
            assert sim.now > 0
        finally:
            sim.shutdown()

    def test_submit_inside_simulation_returns_pending_future(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        workload = SieveWorkload(MAX, PACKS)
        app = ParallelApp(
            sieve_farm_spec(
                workload, backend="sim", middleware="mpp", cluster=cluster
            )
        )
        out = {}

        def main():
            app.start(2, workload.sqrt)
            future = app.submit(workload.candidates)
            out["resolved_at_submit"] = future.resolved
            out["result"] = future.result()

        try:
            with app:
                sim.spawn(main, name="driver")
                sim.run()
            assert out["resolved_at_submit"] is False
            assert np.array_equal(
                np.sort(np.asarray(out["result"])), expected_sieve_output(MAX)
            )
        finally:
            sim.shutdown()


class TestOnewayPacks:
    def test_oneway_pack_sends_one_message_and_skips_reply(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      middleware="mpp", cluster=cluster,
                      oneway=("handle",))
        )
        try:
            with app:
                app.start()
                before = cluster.network.messages
                group = app.map(list(range(8)), pack=True, oneway=True)
                assert group.results() == [None] * 8
                assert cluster.network.messages - before == 1  # no reply msg
                assert app.middleware.oneway_calls == 1
                assert app.middleware.batched_calls == 1
                servant = app.middleware.servant_of(
                    app.distribution.ref_of(app.instance)
                )
                assert servant.calls == 8  # delivered and executed
        finally:
            sim.shutdown()

    def test_oneway_requires_declaration(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      middleware="mpp", cluster=cluster)
        )
        try:
            with app:
                app.start()
                with pytest.raises(DeploymentError, match="not declared"):
                    app.submit(1, oneway=True)
        finally:
            sim.shutdown()

    def test_oneway_on_rmi_rejected_eagerly(self):
        # RMI cannot fire-and-forget: the declaration must fail at
        # assembly, not at the first call
        sim = Simulator()
        cluster = paper_testbed(sim)
        try:
            with pytest.raises(DeploymentError, match="one-way"):
                ParallelApp(
                    StackSpec(target=Doubler, work="handle", strategy="none",
                              middleware="rmi", cluster=cluster,
                              oneway=("handle",))
                )
        finally:
            sim.shutdown()

    def test_oneway_on_hybrid_must_be_a_data_method(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        try:
            with pytest.raises(DeploymentError, match="data path"):
                ParallelApp(
                    StackSpec(target=Doubler, work="handle", strategy="none",
                              middleware="hybrid", cluster=cluster,
                              middleware_options={"data_methods": ()},
                              oneway=("handle",))
                )
            # declared as a data method, the same spec assembles fine
            app = ParallelApp(
                StackSpec(target=Doubler, work="handle", strategy="none",
                          middleware="hybrid", cluster=cluster,
                          middleware_options={"data_methods": ("handle",)},
                          oneway=("handle",))
            )
            with app:
                app.start()
                assert app.map([1, 2], pack=True, oneway=True).results() == [
                    None,
                    None,
                ]
        finally:
            sim.shutdown()

    def test_pack_map_on_farm_sends_one_message_per_pack_per_worker(self):
        # pack-aware partition routing: each whole pack goes to one
        # worker as ONE batched request (plus its one reply)
        sim = Simulator()
        cluster = paper_testbed(sim)
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle",
                      splitter=WorkSplitter(duplicates=2),
                      strategy="farm", middleware="mpp", cluster=cluster)
        )
        try:
            with app:
                app.start()
                before = cluster.network.messages
                group = app.map([1, 2, 3, 4, 5, 6], pack=3)
                assert group.results() == [2, 4, 6, 8, 10, 12]
                # 2 packs of 3 -> 2 requests + 2 replies, nothing per-item
                assert cluster.network.messages - before == 4
                assert app.middleware.batched_calls == 2
                farm = app.partition
                assert farm.dispatches == 2
                # round-robin: each worker served one whole pack
                served = [
                    app.middleware.servant_of(app.distribution.ref_of(w)).calls
                    for w in farm.workers
                ]
                assert sorted(served) == [3, 3]
        finally:
            sim.shutdown()

    def test_oneway_pack_map_on_farm_is_fire_and_forget(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle",
                      splitter=WorkSplitter(duplicates=2),
                      strategy="farm", middleware="mpp", cluster=cluster,
                      oneway=("handle",))
        )
        try:
            with app:
                app.start()
                before = cluster.network.messages
                group = app.map([1, 2, 3, 4], pack=2, oneway=True)
                assert group.results() == [None] * 4
                # one message per pack, zero replies
                assert cluster.network.messages - before == 2
                assert app.middleware.oneway_calls == 2
        finally:
            sim.shutdown()

    def test_pack_map_from_inside_the_simulation(self):
        # regression: pack futures must live on the app's backend, or a
        # sim-process caller waiting on them deadlocks the simulation
        sim = Simulator()
        cluster = paper_testbed(sim)
        app = ParallelApp(
            StackSpec(target=Doubler, work="handle", strategy="none",
                      middleware="mpp", cluster=cluster)
        )
        out = {}

        def main():
            app.start()
            out["results"] = app.map([1, 2, 3], pack=True).results()

        try:
            with app:
                sim.spawn(main, name="driver")
                sim.run()
            assert out["results"] == [2, 4, 6]
        finally:
            sim.shutdown()


class TestFluentBuilder:
    def test_builder_accumulates_and_builds(self):
        workload = SieveWorkload(MAX, PACKS)
        app = (
            ParallelApp.of(PrimeFilter)
            .work("filter")
            .splitter(workload.farm_splitter(3))
            .strategy("farm")
            .backend("thread")
            .named("fluent-farm")
            .build()
        )
        assert isinstance(app, ParallelApp)
        assert app.composition.name == "fluent-farm"
        with app:
            app.start(2, workload.sqrt)
            result = app.submit(workload.candidates).result()
        assert np.array_equal(
            np.sort(np.asarray(result)), expected_sieve_output(MAX)
        )

    def test_builder_validates_eagerly(self):
        builder = (
            ParallelApp.of(PrimeFilter)
            .work("filter")
            .strategy("farm")  # no splitter
        )
        assert isinstance(builder, AppBuilder)
        with pytest.raises(DeploymentError, match="splitter"):
            builder.build()


class TestOpenRegistry:
    def test_custom_strategy_plugs_in_without_editing_any_facade(self):
        name = "test-broadcast"
        if name in STRATEGIES:
            STRATEGIES.unregister(name)

        @register_strategy(name)
        def broadcast_module(splitter, creation, work, **options):
            # reuse the farm mechanics under a new registered name
            return farm_module(splitter, creation, work, name=name)

        try:
            workload = SieveWorkload(MAX, PACKS)
            app = ParallelApp(
                sieve_farm_spec(workload, strategy=name)
            )
            assert name in app.modules
            with app:
                app.start(2, workload.sqrt)
                result = app.submit(workload.candidates).result()
            assert np.array_equal(
                np.sort(np.asarray(result)), expected_sieve_output(MAX)
            )
        finally:
            STRATEGIES.unregister(name)
