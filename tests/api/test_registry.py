"""The open registries: registration, lookup, and rich unknown-name errors."""

from __future__ import annotations

import pytest

from repro.api.registry import (
    BACKENDS,
    MIDDLEWARES,
    STRATEGIES,
    Registry,
    UnknownNameError,
)
from repro.errors import DeploymentError


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        assert reg.get("alpha") == 1
        assert "alpha" in reg
        assert reg.names() == ("alpha",)

    def test_decorator_form(self):
        reg = Registry("thing")

        @reg.register("beta")
        def builder():
            return "built"

        assert reg.get("beta") is builder

    def test_duplicate_registration_guarded(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        with pytest.raises(DeploymentError, match="already registered"):
            reg.register("alpha", 2)
        reg.register("alpha", 2, replace=True)
        assert reg.get("alpha") == 2

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        assert reg.unregister("alpha") == 1
        with pytest.raises(UnknownNameError):
            reg.unregister("alpha")

    def test_unknown_name_lists_catalogue(self):
        reg = Registry("strategy")
        reg.register("farm", 1)
        reg.register("pipeline", 2)
        with pytest.raises(UnknownNameError) as excinfo:
            reg.get("wavefront")
        message = str(excinfo.value)
        assert "farm" in message and "pipeline" in message
        assert excinfo.value.known == ("farm", "pipeline")

    def test_typo_gets_nearest_match_suggestion(self):
        reg = Registry("strategy")
        reg.register("farm", 1)
        reg.register("pipeline", 2)
        with pytest.raises(UnknownNameError) as excinfo:
            reg.get("pipelin")
        assert excinfo.value.suggestion == "pipeline"
        assert "did you mean 'pipeline'?" in str(excinfo.value)

    def test_unknown_name_is_a_deployment_error(self):
        reg = Registry("thing")
        with pytest.raises(DeploymentError):
            reg.get("anything")


class TestBuiltinRegistrations:
    def test_builtin_strategies_registered(self):
        import repro.parallel  # noqa: F401 - triggers self-registration

        for name in ("farm", "pipeline", "dynamic-farm", "heartbeat", "none"):
            assert name in STRATEGIES, name

    def test_builtin_middlewares_registered(self):
        import repro.parallel  # noqa: F401 - triggers self-registration

        for name in ("rmi", "mpp", "hybrid", "none"):
            assert name in MIDDLEWARES, name

    def test_builtin_backends_registered(self):
        import repro.runtime  # noqa: F401 - triggers self-registration

        assert "thread" in BACKENDS and "sim" in BACKENDS

    def test_backend_factories_produce_backends(self):
        from repro.runtime import ExecutionBackend

        backend = BACKENDS.get("thread")()
        assert isinstance(backend, ExecutionBackend)
        sim_backend = BACKENDS.get("sim")()
        assert isinstance(sim_backend, ExecutionBackend)
        assert sim_backend.sim is not None
