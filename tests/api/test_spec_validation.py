"""StackSpec: pointcut expansion, derivation, and eager validation."""

from __future__ import annotations

import pytest

from repro.api.registry import UnknownNameError
from repro.api.spec import StackSpec
from repro.errors import DeploymentError
from repro.parallel import WorkSplitter


class Widget:
    def __init__(self, size=1):
        self.size = size

    def work(self, x):
        return x


def widget_spec(**overrides):
    fields = dict(
        target=Widget,
        work="work",
        splitter=WorkSplitter(duplicates=2),
        strategy="farm",
    )
    fields.update(overrides)
    return StackSpec(**fields)


class TestExpansion:
    def test_bare_method_name_expands_to_call_pointcut(self):
        spec = widget_spec()
        assert spec.work_pointcut == "call(Widget.work(..))"

    def test_full_pointcut_passes_through(self):
        spec = widget_spec(work="call(Widget.w*(..))", work_method="work")
        assert spec.work_pointcut == "call(Widget.w*(..))"

    def test_creation_defaults_from_target(self):
        assert widget_spec().creation_pointcut == "initialization(Widget.new(..))"

    def test_creation_bare_name_expands(self):
        spec = widget_spec(creation="new")
        assert spec.creation_pointcut == "initialization(Widget.new(..))"

    def test_work_method_derived_from_pointcut(self):
        spec = widget_spec(work="call(Widget.work(..))")
        assert spec.resolved_work_method == "work"

    def test_work_method_underivable_raises_with_hint(self):
        spec = widget_spec(work="call(Widget.w*(..))")
        with pytest.raises(DeploymentError, match="work_method"):
            spec.resolved_work_method

    def test_explicit_work_method_wins(self):
        spec = widget_spec(work="call(Widget.w*(..))", work_method="work")
        assert spec.resolved_work_method == "work"


class TestValidation:
    def test_valid_spec_returns_self(self):
        spec = widget_spec()
        assert spec.validate() is spec

    def test_target_must_be_a_class(self):
        with pytest.raises(DeploymentError, match="must be a class"):
            StackSpec(target=Widget(), work="work").validate()  # type: ignore[arg-type]

    def test_work_is_mandatory(self):
        with pytest.raises(DeploymentError, match="work pointcut"):
            StackSpec(target=Widget).validate()

    def test_unknown_strategy_suggests_nearest(self):
        with pytest.raises(UnknownNameError, match="did you mean 'farm'"):
            widget_spec(strategy="frm").validate()

    def test_unknown_middleware_suggests_nearest(self):
        with pytest.raises(UnknownNameError, match="did you mean 'rmi'"):
            widget_spec(middleware="rmmi").validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnknownNameError, match="backend"):
            widget_spec(backend="threds").validate()

    def test_strategy_needs_splitter(self):
        with pytest.raises(DeploymentError, match="needs a splitter"):
            widget_spec(splitter=None).validate()

    def test_none_strategy_needs_no_splitter(self):
        widget_spec(strategy="none", splitter=None).validate()

    def test_divide_conquer_strategy_needs_no_splitter(self):
        # the registered builder declares requires_splitter=False: the
        # recursion hooks ride in strategy_options instead
        widget_spec(
            strategy="divide-conquer",
            splitter=None,
            strategy_options=dict(
                should_divide=lambda a, k, d: False,
                divide=lambda a, k: [],
                merge=sum,
            ),
        ).validate()

    def test_max_in_flight_must_be_positive(self):
        with pytest.raises(DeploymentError, match="max_in_flight"):
            widget_spec(max_in_flight=0).validate()
        widget_spec(max_in_flight=1).validate()
        widget_spec(max_in_flight=None).validate()

    def test_overflow_policy_names_are_validated(self):
        with pytest.raises(DeploymentError, match="overflow policy"):
            widget_spec(overflow="panic").validate()
        for policy in ("block", "fail", "shed-oldest"):
            widget_spec(max_in_flight=2, overflow=policy).validate()

    def test_timeout_must_be_positive_seconds(self):
        with pytest.raises(DeploymentError, match="timeout"):
            widget_spec(timeout=0).validate()
        with pytest.raises(DeploymentError, match="timeout"):
            widget_spec(timeout=-1.5).validate()
        widget_spec(timeout=0.5).validate()

    def test_middleware_needs_cluster(self):
        with pytest.raises(DeploymentError, match="needs a cluster"):
            widget_spec(middleware="rmi").validate()

    def test_oneway_needs_middleware(self):
        with pytest.raises(DeploymentError, match="oneway"):
            widget_spec(oneway=("work",)).validate()

    def test_pack_routable_follows_strategy_capability(self):
        assert widget_spec().pack_routable  # farm routes packs
        assert widget_spec(strategy="dynamic-farm").pack_routable
        assert widget_spec(strategy="pipeline").pack_routable
        assert widget_spec(strategy="none", splitter=None).pack_routable
        assert not widget_spec(strategy="heartbeat").pack_routable

    def test_oneway_rejected_on_reply_dependent_strategies(self):
        # cross-field rule matching the map(pack=...) capabilities:
        # heartbeat gathers step results and the pipeline forwards each
        # hop's reply — neither can serve fire-and-forget work, so the
        # declaration must fail at validation time.  Farms are pure
        # scatter and pass.
        from repro.cluster import paper_testbed
        from repro.sim import Simulator

        sim = Simulator()
        try:
            cluster = paper_testbed(sim)
            for strategy in ("heartbeat", "pipeline"):
                with pytest.raises(DeploymentError, match="cannot serve"):
                    widget_spec(
                        strategy=strategy,
                        middleware="mpp",
                        cluster=cluster,
                        oneway=("work",),
                    ).validate()
            widget_spec(
                strategy="farm",
                middleware="mpp",
                cluster=cluster,
                oneway=("work",),
            ).validate()
            # oneway on an AUXILIARY method is fine on any strategy —
            # only the work call itself is reply-dependent
            widget_spec(
                strategy="pipeline",
                middleware="mpp",
                cluster=cluster,
                oneway=("notify",),
            ).validate()
        finally:
            sim.shutdown()

    def test_with_copies_and_overrides(self):
        spec = widget_spec()
        copy = spec.with_(strategy="pipeline")
        assert copy.strategy == "pipeline"
        assert spec.strategy == "farm"
        assert copy.target is Widget

    def test_describe_mentions_the_choices(self):
        text = widget_spec().describe()
        assert "farm" in text and "Widget" in text
