"""The ``parallelise()`` compatibility shim over ParallelApp."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.app import ParallelApp
from repro.api.registry import UnknownNameError
from repro.apps.primes import PrimeFilter, SieveWorkload, expected_sieve_output
from repro.errors import DeploymentError
from repro.parallel.skeletons import (
    MIDDLEWARES,
    STRATEGIES,
    ParallelStack,
    parallelise,
)
from repro.runtime import Future, ThreadBackend, use_backend

MAX = 10_000
PACKS = 4

CREATION = "initialization(PrimeFilter.new(..))"
WORK = "call(PrimeFilter.filter(..))"


def make_stack(**overrides):
    workload = SieveWorkload(MAX, PACKS)
    kwargs = dict(strategy="farm")
    kwargs.update(overrides)
    return workload, parallelise(
        PrimeFilter, workload.farm_splitter(3), CREATION, WORK, **kwargs
    )


class TestShimSurface:
    def test_stack_is_backed_by_a_parallel_app(self):
        _, stack = make_stack()
        assert isinstance(stack, ParallelStack)
        assert isinstance(stack.app, ParallelApp)
        assert stack.composition is stack.app.composition
        assert stack.partition is stack.app.partition

    def test_catalogues_reflect_the_registries(self):
        assert "farm" in STRATEGIES and "heartbeat" in STRATEGIES
        assert "none" in MIDDLEWARES and "rmi" in MIDDLEWARES

    def test_unknown_strategy_error_lists_and_suggests(self):
        workload = SieveWorkload(MAX, PACKS)
        with pytest.raises(UnknownNameError) as excinfo:
            parallelise(
                PrimeFilter, workload.farm_splitter(2), CREATION, WORK,
                strategy="pipelin",
            )
        assert "did you mean 'pipeline'?" in str(excinfo.value)
        assert "farm" in str(excinfo.value)  # full catalogue listed

    def test_unknown_middleware_is_still_a_deployment_error(self):
        workload = SieveWorkload(MAX, PACKS)
        with pytest.raises(DeploymentError):
            parallelise(
                PrimeFilter, workload.farm_splitter(2), CREATION, WORK,
                middleware="corba",
            )

    def test_shim_runs_the_stack_exactly_like_before(self):
        workload, stack = make_stack()
        with use_backend(ThreadBackend()):
            with stack:
                pf = PrimeFilter(2, workload.sqrt)
                result = pf.filter(workload.candidates)
                if isinstance(result, Future):
                    result = result.result()
        assert np.array_equal(
            np.sort(np.asarray(result)), expected_sieve_output(MAX)
        )

    def test_stack_still_exposes_submit_through_the_app(self):
        workload, stack = make_stack()
        with stack:
            stack.app.start(2, workload.sqrt)
            result = stack.app.submit(workload.candidates).result()
        assert np.array_equal(
            np.sort(np.asarray(result)), expected_sieve_output(MAX)
        )

    def test_wildcard_work_pattern_still_accepted(self):
        # the legacy facade accepted arbitrary patterns; they deploy fine
        # and only submit() is off the table
        workload = SieveWorkload(MAX, PACKS)
        stack = parallelise(
            PrimeFilter,
            workload.farm_splitter(2),
            CREATION,
            "call(PrimeFilter.fil*(..))",
        )
        with stack:
            pass
        with pytest.raises(DeploymentError, match="work_method"):
            stack.app.spec.resolved_work_method
