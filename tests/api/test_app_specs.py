"""Every example app runs through ParallelApp via its declarative spec."""

from __future__ import annotations

import numpy as np

from repro.api import ParallelApp
from repro.apps.jacobi import JacobiGrid, jacobi_spec, stitch_blocks
from repro.apps.mandelbrot import (
    MandelbrotRenderer,
    MandelbrotScene,
    mandelbrot_spec,
)
from repro.apps.primes import SieveWorkload, expected_sieve_output, sieve_spec
from repro.apps.wordcount import TextPipeline, wordcount_spec


def test_mandelbrot_farm_spec_matches_sequential():
    scene = MandelbrotScene(width=32, height=20, max_iter=24)
    sequential = MandelbrotRenderer(scene).render_all()
    app = ParallelApp(mandelbrot_spec(workers=3, bands=6, backend="thread"))
    with app:
        app.start(scene)
        image = app.submit(np.arange(scene.height)).result()
    assert np.array_equal(image, sequential)


def test_jacobi_heartbeat_spec_matches_sequential():
    reference = JacobiGrid(12, 16)
    reference.solve(60)
    app = ParallelApp(jacobi_spec(blocks=3, backend="thread"))
    with app:
        app.start(12, 16)
        app.submit(60).result()
        parallel = stitch_blocks(app.partition.workers)
    assert np.allclose(parallel, reference.interior())


def test_wordcount_pipeline_spec_matches_sequential():
    documents = ["the cat sat", "the dog SAT!", "a cat and a dog barked"]
    expected = TextPipeline().process(list(documents))
    app = ParallelApp(wordcount_spec(batches=2, backend="thread"))
    with app:
        app.start()
        counts = app.submit(list(documents)).result()
    assert counts == expected


def test_primes_spec_on_simulated_testbed():
    from repro.cluster import paper_testbed
    from repro.sim import Simulator

    sim = Simulator()
    workload = SieveWorkload(10_000, 4)
    app = ParallelApp(
        sieve_spec("FarmMPP", workload, 3, cluster=paper_testbed(sim))
    )
    try:
        with app:
            app.start(2, workload.sqrt)
            survivors = app.submit(workload.candidates).result()
        assert np.array_equal(
            np.sort(np.asarray(survivors)), expected_sieve_output(10_000)
        )
        assert app.middleware.calls >= 4
    finally:
        sim.shutdown()


def test_specs_accept_deployment_overrides():
    spec = mandelbrot_spec(2, 4, backend="thread", concurrency=False)
    assert spec.concurrency is False
    assert spec.strategy == "farm"
    assert spec.resolved_work_method == "render"
