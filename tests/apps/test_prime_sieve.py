"""End-to-end prime sieve: core correctness, every Table 1 combination
on the simulated testbed, thread-mode runs, and plug/unplug semantics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.apps.primes import (
    PrimeFilter,
    SieveWorkload,
    base_primes,
    build_sieve_stack,
    expected_sieve_output,
    primes_up_to,
)
from repro.bench.harness import run_handcoded, run_sieve
from repro.runtime import Future, ThreadBackend, use_backend

MAX = 20_000
PACKS = 5


class TestCoreFunctionality:
    def test_base_primes_small(self):
        assert base_primes(20).tolist() == [2, 3, 5, 7, 11, 13, 17, 19]
        assert base_primes(1).tolist() == []

    def test_reference_sieve(self):
        assert primes_up_to(30).tolist() == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_sequential_core_equals_reference(self):
        workload = SieveWorkload(MAX, PACKS)
        pf = PrimeFilter(2, workload.sqrt)
        survivors = pf.filter(workload.candidates)
        assert survivors.tolist() == expected_sieve_output(MAX).tolist()

    def test_ops_counters_track_work(self):
        pf = PrimeFilter(2, 100)
        pf.filter(np.arange(101, 1001, 2))
        assert pf.ops_last > 0
        assert pf.ops_total == pf.ops_last
        pf.filter(np.arange(1001, 2001, 2))
        assert pf.ops_total > pf.ops_last

    def test_empty_prime_range_passes_everything_through(self):
        # more pipeline stages than base primes produce empty-range
        # filters; they must be benign identity stages
        empty = PrimeFilter(10, 5)
        assert len(empty.primes) == 0
        candidates = np.arange(11, 31, 2)
        assert np.array_equal(empty.filter(candidates), candidates)
        assert empty.ops_last == 0

    def test_filter_empty_candidates(self):
        pf = PrimeFilter(2, 100)
        assert pf.filter(np.empty(0, dtype=np.int64)).size == 0


class TestWorkload:
    def test_pack_structure(self):
        workload = SieveWorkload(MAX, PACKS)
        packs = workload.pack_list()
        assert len(packs) == PACKS
        joined = np.concatenate(packs)
        assert np.array_equal(joined, workload.candidates)
        # only odd numbers above sqrt(max)
        assert int(joined.min()) > math.isqrt(MAX)
        assert all(int(v) % 2 == 1 for v in joined[:10])

    def test_stage_ranges_cover_base_primes(self):
        workload = SieveWorkload(MAX, PACKS)
        ranges = workload.stage_ranges(4)
        assert len(ranges) == 4
        covered = []
        for lo, hi in ranges:
            covered.extend(
                int(p) for p in workload.base if lo <= int(p) <= hi
            )
        assert covered == [int(p) for p in workload.base]

    def test_more_stages_than_primes_yields_empty_ranges(self):
        workload = SieveWorkload(150, 2)  # base primes up to 12: 2,3,5,7,11
        ranges = workload.stage_ranges(8)
        assert len(ranges) == 8

    def test_split_call_covers_candidates(self):
        workload = SieveWorkload(MAX, PACKS)
        pieces = workload.split_call((workload.candidates,), {})
        joined = np.concatenate([p.args[0] for p in pieces])
        assert np.array_equal(joined, workload.candidates)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            SieveWorkload(4)
        with pytest.raises(ValueError):
            SieveWorkload(1000, 0)


def run_thread_mode(combo: str, n_filters: int) -> np.ndarray:
    """Functional-mode run: real threads, no cluster, no cost model."""
    workload = SieveWorkload(MAX, PACKS)
    stack = build_sieve_stack(combo, workload, n_filters)
    weave(PrimeFilter)
    with use_backend(ThreadBackend()):
        with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
            pf = PrimeFilter(2, workload.sqrt)
            result = pf.filter(workload.candidates)
            if isinstance(result, Future):
                result = result.result()
    return np.sort(np.asarray(result))


class TestThreadModeCombinations:
    """Functional (real threading) runs — semantics, not performance."""

    @pytest.mark.parametrize("combo", ["FarmThreads", "PipeThreads"])
    @pytest.mark.parametrize("n_filters", [1, 3])
    def test_combination_produces_reference_primes(self, combo, n_filters):
        survivors = run_thread_mode(combo, n_filters)
        assert survivors.tolist() == expected_sieve_output(MAX).tolist()

    def test_partition_only_no_concurrency_is_still_valid(self):
        """Paper: 'the program must be valid without concurrency'."""
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("FarmThreads", workload, 3)
        stack.composition.unplug("concurrency")
        weave(PrimeFilter)
        with use_backend(ThreadBackend()):
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                pf = PrimeFilter(2, workload.sqrt)
                survivors = pf.filter(workload.candidates)
        assert np.sort(survivors).tolist() == expected_sieve_output(MAX).tolist()

    def test_unplugged_composition_restores_sequential_semantics(self):
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("FarmThreads", workload, 3)
        weave(PrimeFilter)
        with use_backend(ThreadBackend()):
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                pass  # deploy then undeploy
            pf = PrimeFilter(2, workload.sqrt)
            assert pf.packs_filtered == 0
            survivors = pf.filter(workload.candidates)
            # one call, one filter: sequential again
            assert pf.packs_filtered == 1
        assert survivors.tolist() == expected_sieve_output(MAX).tolist()

    def test_farm_duplicates_workers(self):
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("FarmThreads", workload, 4)
        weave(PrimeFilter)
        with use_backend(ThreadBackend()):
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                PrimeFilter(2, workload.sqrt)
                assert len(stack.partition.workers) == 4
                # broadcast: every worker holds ALL the base primes
                for worker in stack.partition.workers:
                    assert len(worker.primes) == len(workload.base)

    def test_pipeline_stages_partition_the_primes(self):
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("PipeThreads", workload, 3)
        weave(PrimeFilter)
        with use_backend(ThreadBackend()):
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                PrimeFilter(2, workload.sqrt)
                stages = stack.partition.instances
                assert len(stages) == 3
                total = sum(len(s.primes) for s in stages)
                assert total == len(workload.base)


class TestSimulatedCombinations:
    """Every Table 1 row runs correctly on the simulated testbed."""

    @pytest.mark.parametrize(
        "combo", ["FarmThreads", "PipeRMI", "FarmRMI", "FarmDRMI", "FarmMPP"]
    )
    def test_combination_correct_and_timed(self, combo):
        result = run_sieve(combo, n_filters=3, maximum=MAX, packs=PACKS)
        assert result.correct, f"{combo} produced wrong primes"
        assert result.sim_time > 0
        assert result.survivors == len(expected_sieve_output(MAX))

    def test_extra_combinations(self):
        for combo in ["PipeMPP", "FarmHybrid", "Sequential"]:
            result = run_sieve(combo, n_filters=2, maximum=MAX, packs=PACKS)
            assert result.correct, combo

    def test_distributed_run_sends_remote_messages(self):
        result = run_sieve("FarmRMI", n_filters=3, maximum=MAX, packs=PACKS)
        assert result.remote_messages > 0
        assert result.middleware_calls >= PACKS

    def test_pipeline_sends_more_messages_than_farm(self):
        pipe = run_sieve("PipeRMI", n_filters=4, maximum=MAX, packs=PACKS)
        farm = run_sieve("FarmRMI", n_filters=4, maximum=MAX, packs=PACKS)
        # each message crosses all pipeline elements (paper Section 6)
        assert pipe.middleware_calls > farm.middleware_calls

    def test_dynamic_farm_balances_load(self):
        workload = SieveWorkload(MAX, PACKS)
        assert workload.packs == PACKS
        result = run_sieve("FarmDRMI", n_filters=2, maximum=MAX, packs=PACKS)
        assert result.correct


class TestHandCodedBaselines:
    @pytest.mark.parametrize("kind", ["pipeline", "farm"])
    def test_handcoded_correct(self, kind):
        result = run_handcoded(kind, n_filters=3, maximum=MAX, packs=PACKS)
        assert result.correct
        assert result.sim_time > 0

    def test_handcoded_vs_woven_overhead_is_small(self):
        hand = run_handcoded("pipeline", n_filters=3, maximum=MAX, packs=PACKS)
        woven = run_sieve("PipeRMI", n_filters=3, maximum=MAX, packs=PACKS)
        # identical communication structure ...
        assert woven.messages == hand.messages
        assert woven.middleware_calls == hand.middleware_calls
        # ... and a bounded time overhead.  At this toy scale the run is
        # latency-bound, so the band is loose; the Figure 16 benchmark
        # checks the paper's <5 % claim at full (compute-bound) scale.
        assert woven.sim_time >= hand.sim_time * 0.99
        assert woven.sim_time <= hand.sim_time * 1.25
