"""Failure injection across the stack.

The methodology's debugging story ("unplug concurrency for debugging")
only matters if failures surface cleanly.  These tests inject faults at
each layer and assert the error reaches the client with its identity
intact — no hangs, no silent corruption.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aop import Aspect, around, weave
from repro.aop.weaver import default_weaver
from repro.apps.primes import (
    PrimeFilter,
    SieveWorkload,
    build_sieve_stack,
    expected_sieve_output,
)
from repro.cluster import paper_testbed
from repro.errors import RemoteError
from repro.middleware import RmiMiddleware, use_node
from repro.middleware.context import current_node
from repro.parallel import Concern, ParallelModule
from repro.runtime import Future, SimBackend, ThreadBackend, use_backend
from repro.sim import Simulator

MAX = 20_000
PACKS = 4


class FaultAspect(Aspect):
    """Injects an exception into the nth matched call."""

    precedence = 50  # inside distribution: the servant-side fault

    def __init__(self, pointcut_text, fail_on=1, error=RuntimeError("injected")):
        from repro.aop import pointcut

        self.fail_calls = pointcut(pointcut_text)
        self.fail_on = fail_on
        self.error = error
        self.calls = 0

    @around("fail_calls")
    def maybe_fail(self, jp):
        self.calls += 1
        if self.calls == self.fail_on:
            raise self.error
        return jp.proceed()


class TestWorkerFaults:
    def test_farm_thread_mode_fault_reaches_client(self):
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("FarmThreads", workload, 3)
        fault = FaultAspect("call(PrimeFilter.filter(..))", fail_on=2)
        stack.composition.plug(
            ParallelModule("fault", Concern.OPTIMISATION, [fault])
        )
        weave(PrimeFilter)
        with use_backend(ThreadBackend()):
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                prime_filter = PrimeFilter(2, workload.sqrt)
                with pytest.raises(RuntimeError, match="injected"):
                    prime_filter.filter(workload.candidates)

    def test_remote_servant_fault_wrapped_as_remote_error(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        class Flaky:
            def work(self):
                raise OSError("disk on fire")

        out = {}

        def main():
            ref = rmi.export(Flaky(), cluster.node(1))
            with use_node(cluster.head):
                try:
                    rmi.invoke(ref, "work")
                except RemoteError as exc:
                    out["cause"] = type(exc.cause).__name__

        sim.spawn(main)
        sim.run()
        rmi.shutdown()
        sim.shutdown()
        assert out["cause"] == "OSError"

    def test_sim_mode_fault_aborts_run_not_hangs(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("FarmRMI", workload, 2, cluster=cluster)
        fault = FaultAspect("call(PrimeFilter.filter(..))", fail_on=3)
        stack.composition.plug(
            ParallelModule("fault", Concern.OPTIMISATION, [fault])
        )
        backend = SimBackend(sim)
        failures = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                prime_filter = PrimeFilter(2, workload.sqrt)
                try:
                    result = prime_filter.filter(workload.candidates)
                    if isinstance(result, Future):
                        result = result.result()
                    failures["outcome"] = "no error"
                except (RemoteError, RuntimeError) as exc:
                    failures["outcome"] = type(exc).__name__

        try:
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                sim.spawn(main, name="main")
                sim.run()
        finally:
            stack.shutdown()
            sim.shutdown()
        # the fault fired on the servant side -> RemoteError at the client
        assert failures["outcome"] in ("RemoteError", "RuntimeError")

    def test_recovery_after_unplugging_faulty_module(self):
        """Unplug the broken module; the stack heals (the paper's
        incremental debugging loop)."""
        workload = SieveWorkload(MAX, PACKS)
        stack = build_sieve_stack("FarmThreads", workload, 2)
        fault = FaultAspect("call(PrimeFilter.filter(..))", fail_on=1)
        stack.composition.plug(
            ParallelModule("fault", Concern.OPTIMISATION, [fault])
        )
        weave(PrimeFilter)
        with use_backend(ThreadBackend()):
            with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
                prime_filter = PrimeFilter(2, workload.sqrt)
                with pytest.raises(RuntimeError):
                    prime_filter.filter(workload.candidates)
                stack.composition.unplug("fault")
                survivors = prime_filter.filter(workload.candidates)
        assert np.array_equal(
            np.sort(np.asarray(survivors)), expected_sieve_output(MAX)
        )


class TestAdviceFaults:
    def test_exception_in_before_advice_propagates(self):
        class Widget:
            def go(self):
                return 1

        from repro.aop import before, deploy

        class Broken(Aspect):
            @before("call(Widget.go(..))")
            def pre(self, jp):
                raise ValueError("advice bug")

        weave(Widget)
        deploy(Broken())
        with pytest.raises(ValueError, match="advice bug"):
            Widget().go()

    def test_after_throwing_does_not_swallow(self):
        class Widget:
            def go(self):
                raise KeyError("original")

        from repro.aop import after_throwing, deploy

        seen = []

        class Observer(Aspect):
            @after_throwing("call(Widget.go(..))")
            def observe(self, jp):
                seen.append(type(jp.exception).__name__)

        weave(Widget)
        deploy(Observer())
        with pytest.raises(KeyError, match="original"):
            Widget().go()
        assert seen == ["KeyError"]


class TestCostAspectPlacementEdge:
    def test_cost_aspect_without_node_is_noop(self):
        """Thread mode has no nodes: the cost aspect must not crash."""
        from repro.apps.primes import sieve_cost_aspect

        workload = SieveWorkload(MAX, PACKS)
        cost = sieve_cost_aspect(1e-9)
        weave(PrimeFilter)
        default_weaver.deploy(cost)
        assert current_node() is None
        pf = PrimeFilter(2, workload.sqrt)
        survivors = pf.filter(workload.candidates)
        assert np.array_equal(np.sort(survivors), expected_sieve_output(MAX))
        assert cost.charges == 0  # nothing charged without a node
