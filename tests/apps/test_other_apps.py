"""The three other case studies: Mandelbrot farm, Jacobi heartbeat,
word-count pipeline — sequential core vs woven-parallel equivalence."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.apps.jacobi import (
    JACOBI_CREATION,
    JACOBI_WORK,
    JacobiGrid,
    block_ranges,
    jacobi_splitter,
    stitch_blocks,
)
from repro.apps.mandelbrot import MandelbrotRenderer, MandelbrotScene, mandelbrot_splitter
from repro.apps.mandelbrot.aspects import MANDEL_CREATION, MANDEL_WORK
from repro.apps.wordcount import (
    WC_CREATION,
    WC_WORK,
    TextPipeline,
    wordcount_splitter,
)
from repro.parallel import (
    Composition,
    concurrency_module,
    farm_module,
    heartbeat_module,
    pipeline_module,
)
from repro.runtime import Future, ThreadBackend, use_backend

DOCS = [
    "The quick brown fox jumps over the lazy dog",
    "the DOG barks and the Fox runs",
    "Isn't aspect oriented programming fun",
    "parallel programs need partition concurrency and distribution",
    "the fox and the dog are friends",
]


class TestMandelbrotCore:
    def test_render_all_shape_and_interior_set(self):
        scene = MandelbrotScene(width=40, height=30, max_iter=30)
        image = MandelbrotRenderer(scene).render_all()
        assert image.shape == (30, 40)
        # the window contains points inside the set (max_iter reached)
        assert image.max() == 30
        assert image.min() >= 0

    def test_band_render_matches_full_render(self):
        scene = MandelbrotScene(width=30, height=20, max_iter=25)
        full = MandelbrotRenderer(scene).render_all()
        top = MandelbrotRenderer(scene).render(np.arange(0, 10))
        bottom = MandelbrotRenderer(scene).render(np.arange(10, 20))
        assert np.array_equal(np.vstack([top, bottom]), full)

    def test_invalid_scene(self):
        with pytest.raises(ValueError):
            MandelbrotScene(width=0)
        with pytest.raises(ValueError):
            MandelbrotScene(max_iter=0)

    def test_farm_woven_equals_sequential(self):
        scene = MandelbrotScene(width=30, height=24, max_iter=25)
        sequential = MandelbrotRenderer(scene).render_all()

        comp = Composition(
            "mandel-farm",
            [
                farm_module(
                    mandelbrot_splitter(workers=3, bands=6),
                    MANDEL_CREATION,
                    MANDEL_WORK,
                ),
                concurrency_module(MANDEL_WORK, MANDEL_WORK),
            ],
        )
        weave(MandelbrotRenderer)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[MandelbrotRenderer]):
                renderer = MandelbrotRenderer(scene)
                image = renderer.render(np.arange(scene.height))
                if isinstance(image, Future):
                    image = image.result()
        assert np.array_equal(image, sequential)


class TestJacobiCore:
    def test_block_ranges_cover_rows(self):
        ranges = block_ranges(10, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        covered = sum(hi - lo for lo, hi in ranges)
        assert covered == 10

    def test_sequential_solve_converges_towards_boundary(self):
        grid = JacobiGrid(8, 8, top_value=100.0)
        residual_early = grid.solve(1)
        residual_late = grid.solve(50)
        assert residual_late < residual_early
        interior = grid.interior()
        # heat flows from the hot top edge downwards
        assert interior[0].mean() > interior[-1].mean()

    def test_boundary_accessors(self):
        grid = JacobiGrid(4, 4)
        grid.solve(2)
        top = grid.get_boundary("top")
        assert top.shape == (6,)
        replacement = np.full(6, 7.0)
        grid.set_boundary("bottom", replacement)
        assert np.array_equal(grid.grid[-1], replacement)
        with pytest.raises(ValueError):
            grid.get_boundary("left")
        with pytest.raises(ValueError):
            grid.set_boundary("top", np.zeros(3))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            JacobiGrid(0, 4)
        with pytest.raises(ValueError):
            JacobiGrid(4, 4, row_lo=3, row_hi=2)

    def test_heartbeat_woven_equals_sequential(self):
        """The heartbeat decomposition must reproduce sequential Jacobi
        exactly (synchronous iteration + halo exchange)."""
        rows, cols, iters = 12, 10, 20
        sequential = JacobiGrid(rows, cols)
        sequential.solve(iters)
        expected = sequential.interior()

        module = heartbeat_module(
            jacobi_splitter(blocks=3), JACOBI_CREATION, JACOBI_WORK
        )
        comp = Composition("jacobi-heartbeat", [module])
        weave(JacobiGrid)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[JacobiGrid]):
                grid = JacobiGrid(rows, cols)
                grid.solve(iters)
                workers = module.coordinator.workers
                assert len(workers) == 3
                stitched = stitch_blocks(workers)
        assert stitched.shape == expected.shape
        assert np.allclose(stitched, expected)

    def test_heartbeat_with_concurrency_still_exact(self):
        rows, cols, iters = 9, 6, 12
        sequential = JacobiGrid(rows, cols)
        sequential.solve(iters)
        expected = sequential.interior()

        module = heartbeat_module(
            jacobi_splitter(blocks=3), JACOBI_CREATION, JACOBI_WORK
        )
        comp = Composition(
            "jacobi-heartbeat-mt",
            [module, concurrency_module(JACOBI_WORK, JACOBI_WORK)],
        )
        weave(JacobiGrid)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[JacobiGrid]):
                grid = JacobiGrid(rows, cols)
                result = grid.solve(iters)
                if isinstance(result, Future):
                    result = result.result()
                stitched = stitch_blocks(module.coordinator.workers)
        assert np.allclose(stitched, expected)


class TestWordCountCore:
    def test_sequential_counts(self):
        counts = TextPipeline().process(DOCS)
        assert isinstance(counts, Counter)
        assert counts["the"] == 6
        assert counts["fox"] == 3
        assert counts["dog"] == 3
        # single-letter tokens are dropped by normalise
        assert "a" not in counts

    def test_single_role_stages_compose(self):
        tokens = TextPipeline(("tokenise",)).process(DOCS)
        normalised = TextPipeline(("normalise",)).process(tokens)
        counts = TextPipeline(("count",)).process(normalised)
        assert counts == TextPipeline().process(DOCS)

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            TextPipeline(("stem",))

    def test_pipeline_woven_equals_sequential(self):
        expected = TextPipeline().process(DOCS)
        comp = Composition(
            "wc-pipeline",
            [
                pipeline_module(wordcount_splitter(batches=3), WC_CREATION, WC_WORK),
                concurrency_module(WC_WORK, WC_WORK),
            ],
        )
        weave(TextPipeline)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[TextPipeline]):
                pipe = TextPipeline()
                counts = pipe.process(DOCS)
                if isinstance(counts, Future):
                    counts = counts.result()
        assert counts == expected
