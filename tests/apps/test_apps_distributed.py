"""Cross-application distribution: the same reusable distribution
aspects drive the Mandelbrot farm and the Jacobi heartbeat on the
simulated testbed — the paper's reuse claim exercised end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aop.weaver import default_weaver
from repro.apps.jacobi import (
    JACOBI_CREATION,
    JACOBI_WORK,
    JacobiGrid,
    jacobi_splitter,
)
from repro.apps.mandelbrot import (
    MandelbrotRenderer,
    MandelbrotScene,
    mandelbrot_splitter,
)
from repro.apps.mandelbrot.aspects import MANDEL_CREATION, MANDEL_WORK
from repro.cluster import paper_testbed
from repro.middleware import MppMiddleware, RmiMiddleware, use_node
from repro.parallel import (
    Composition,
    concurrency_module,
    farm_module,
    heartbeat_module,
    mpp_distribution_module,
    rmi_distribution_module,
)
from repro.runtime import Future, SimBackend, use_backend
from repro.sim import Simulator


class TestMandelbrotOverRMI:
    def test_distributed_farm_renders_identically(self):
        scene = MandelbrotScene(width=24, height=16, max_iter=20)
        sequential = MandelbrotRenderer(scene).render_all()

        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)
        comp = Composition(
            "mandel-rmi",
            [
                farm_module(
                    mandelbrot_splitter(workers=3, bands=4),
                    MANDEL_CREATION,
                    MANDEL_WORK,
                ),
                concurrency_module(MANDEL_WORK, MANDEL_WORK),
                rmi_distribution_module(rmi, MANDEL_CREATION, MANDEL_WORK),
            ],
        )
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                renderer = MandelbrotRenderer(scene)
                image = renderer.render(np.arange(scene.height))
                if isinstance(image, Future):
                    image = image.result()
                out["image"] = image

        try:
            with comp.deployed(default_weaver, targets=[MandelbrotRenderer]):
                sim.spawn(main)
                sim.run()
        finally:
            rmi.shutdown()
            sim.shutdown()
        assert np.array_equal(out["image"], sequential)
        assert rmi.calls >= 4  # at least one per band
        assert cluster.network.remote_messages > 0


class TestJacobiOverMPP:
    def test_distributed_heartbeat_matches_sequential(self):
        rows, cols, iters = 10, 8, 15
        sequential = JacobiGrid(rows, cols)
        sequential.solve(iters)
        expected = sequential.interior()

        sim = Simulator()
        cluster = paper_testbed(sim)
        mpp = MppMiddleware(cluster)
        module = heartbeat_module(
            jacobi_splitter(blocks=3), JACOBI_CREATION, JACOBI_WORK
        )
        comp = Composition(
            "jacobi-mpp",
            [
                module,
                # boundary accessors travel through the middleware too
                mpp_distribution_module(
                    mpp, JACOBI_CREATION, "call(JacobiGrid.*(..))"
                ),
            ],
        )
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                grid = JacobiGrid(rows, cols)
                out["residual"] = grid.solve(iters)
                # gather the distributed blocks through the middleware
                aspect = comp.module("distribution-mpp").aspect
                blocks = []
                for worker in module.coordinator.workers:
                    ref = aspect.ref_of(worker)
                    blocks.append(mpp.invoke(ref, "interior"))
                out["field"] = np.vstack(blocks)

        try:
            with comp.deployed(default_weaver, targets=[JacobiGrid]):
                sim.spawn(main)
                sim.run()
        finally:
            mpp.shutdown()
            sim.shutdown()
        assert out["field"].shape == expected.shape
        assert np.allclose(out["field"], expected)
        # every iteration exchanged halos across the network
        assert cluster.network.remote_messages > iters

    def test_heartbeat_exchange_counters(self):
        rows, cols, iters, blocks = 8, 6, 5, 2
        sim = Simulator()
        cluster = paper_testbed(sim)
        mpp = MppMiddleware(cluster)
        module = heartbeat_module(
            jacobi_splitter(blocks=blocks), JACOBI_CREATION, JACOBI_WORK
        )
        comp = Composition(
            "jacobi-counters",
            [module, mpp_distribution_module(mpp, JACOBI_CREATION, "call(JacobiGrid.*(..))")],
        )
        backend = SimBackend(sim)

        def main():
            with use_backend(backend), use_node(cluster.head):
                JacobiGrid(rows, cols).solve(iters)

        try:
            with comp.deployed(default_weaver, targets=[JacobiGrid]):
                sim.spawn(main)
                sim.run()
        finally:
            mpp.shutdown()
            sim.shutdown()
        aspect = module.coordinator
        assert aspect.iterations == iters
        # (blocks-1) neighbour pairs x 2 directions x iterations
        assert aspect.exchanges == (blocks - 1) * 2 * iters
