"""The multi-pair bench regression gate (tools/check_bench_regression.py):
per-pair thresholds from the JSON config, loud failure on missing pairs,
and GitHub Actions ::error annotations naming the regressing pair."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_bench_regression.py"


def run_of(num: float, den: float) -> dict:
    return {
        "benchmarks": {
            "bench_fast": {"mean": num},
            "bench_slow": {"mean": den},
        }
    }


PAIR = {
    "name": "fast-vs-slow",
    "numerator": "bench_fast",
    "denominator": "bench_slow",
    "max_regression": 0.25,
}


def run_gate(tmp_path, runs, pairs=None, extra_env=None):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"runs": runs}))
    config = tmp_path / "gates.json"
    config.write_text(json.dumps({"pairs": pairs if pairs is not None else [PAIR]}))
    env = dict(
        os.environ,
        REPRO_BENCH_JSON=str(bench),
        REPRO_BENCH_GATES=str(config),
    )
    env.pop("BENCH_REGRESSION_THRESHOLD", None)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, str(TOOL)], capture_output=True, text=True, env=env
    )


class TestMultiPairGate:
    def test_steady_ratio_passes(self, tmp_path):
        runs = [run_of(0.5, 1.0)] * 3 + [run_of(0.52, 1.0)]
        proc = run_gate(tmp_path, runs)
        assert proc.returncode == 0
        assert "-> OK" in proc.stdout

    def test_regression_fails_with_named_annotation(self, tmp_path):
        runs = [run_of(0.5, 1.0)] * 3 + [run_of(0.9, 1.0)]  # +80%
        proc = run_gate(tmp_path, runs)
        assert proc.returncode == 1
        assert "-> REGRESSION" in proc.stdout
        assert "::error title=bench regression: fast-vs-slow::" in proc.stdout

    def test_missing_pair_in_latest_run_fails_loudly(self, tmp_path):
        runs = [run_of(0.5, 1.0), {"benchmarks": {}}]
        proc = run_gate(tmp_path, runs)
        assert proc.returncode == 1
        assert "::error title=bench pair missing: fast-vs-slow::" in proc.stdout

    def test_first_run_without_baseline_skips(self, tmp_path):
        proc = run_gate(tmp_path, [run_of(0.5, 1.0)])
        assert proc.returncode == 0
        assert "no committed baseline" in proc.stdout

    def test_per_pair_thresholds_apply_independently(self, tmp_path):
        loose = dict(PAIR, name="loose", max_regression=1.0)
        runs = [run_of(0.5, 1.0)] * 3 + [run_of(0.8, 1.0)]  # +60%
        proc = run_gate(tmp_path, runs, pairs=[PAIR, loose])
        assert proc.returncode == 1  # strict pair fails...
        assert "bench-check[fast-vs-slow]" in proc.stdout
        assert "::error title=bench regression: fast-vs-slow" in proc.stdout
        # ...while the loose pair passes on the same numbers
        assert "bench-check[loose]: ratio 0.800" in proc.stdout
        assert "::error title=bench regression: loose" not in proc.stdout
        assert "1 failed" in proc.stdout

    def test_env_threshold_overrides_all_pairs(self, tmp_path):
        runs = [run_of(0.5, 1.0)] * 3 + [run_of(0.8, 1.0)]
        proc = run_gate(
            tmp_path, runs, extra_env={"BENCH_REGRESSION_THRESHOLD": "2.0"}
        )
        assert proc.returncode == 0

    def test_empty_or_missing_config_fails(self, tmp_path):
        proc = run_gate(tmp_path, [run_of(0.5, 1.0)] * 2, pairs=[])
        assert proc.returncode == 1
        assert "declares no pairs" in proc.stdout

    def test_absolute_cap_fails_even_on_steady_trajectory(self, tmp_path):
        capped = dict(PAIR, name="capped", max_ratio=0.6)
        runs = [run_of(0.7, 1.0)] * 3 + [run_of(0.7, 1.0)]  # steady but > cap
        proc = run_gate(tmp_path, runs, pairs=[capped])
        assert proc.returncode == 1
        assert "absolute cap" in proc.stdout
        assert "::error title=bench regression: capped::" in proc.stdout

    def test_absolute_cap_needs_no_baseline(self, tmp_path):
        capped = dict(PAIR, name="capped", max_ratio=0.6)
        proc = run_gate(tmp_path, [run_of(0.5, 1.0)], pairs=[capped])
        assert proc.returncode == 0
        assert "no trajectory baseline yet" in proc.stdout
        assert "-> OK" in proc.stdout

    def test_committed_config_gates_the_committed_pairs(self):
        committed = json.loads(
            (TOOL.parent / "bench_gates.json").read_text()
        )["pairs"]
        names = {pair["name"] for pair in committed}
        assert names == {
            "overlapped-pipeline",
            "pack-routed-farm-map",
            "resident-pool-dynfarm",
            "cpu-farm-process",
            "io-farm-asyncio",
            "pack-marshal-process",
            "fault-retry-farm",
            "five-aspect-stack",
            "nonseparable-mixed-compile",
            "pack8-cache-partial-hit",
            "replicated-read-store",
            "tenancy-p99-overload",
            "tenancy-shed-rate",
        }
        for pair in committed:
            assert 0 < pair["max_regression"] <= 1.0
        # the landed-optimisation pairs are locked in absolutely
        caps = {p["name"]: p.get("max_ratio") for p in committed}
        assert caps["five-aspect-stack"] == 60.0
        assert caps["nonseparable-mixed-compile"] == 0.67
        assert caps["pack8-cache-partial-hit"] == 1.15
        assert caps["replicated-read-store"] == 0.1
