"""Bench harness + experiment generators (at reduced scale)."""

from __future__ import annotations

import pytest

from repro.bench import (
    HANDCODED_COST_MODEL,
    PAPER_COST_MODEL,
    CostModel,
    fig16,
    fig17,
    run_handcoded,
    run_sieve,
    table1,
)
from repro.bench.report import render_checks, render_series, render_table1

MAX = 50_000
PACKS = 6


class TestCostModel:
    def test_paper_model_constants(self):
        assert PAPER_COST_MODEL.aop_factor > 1.0
        assert PAPER_COST_MODEL.dispatch_cost > 0
        assert HANDCODED_COST_MODEL.aop_factor == 1.0
        assert HANDCODED_COST_MODEL.dispatch_cost == 0.0
        assert PAPER_COST_MODEL.ns_per_op == HANDCODED_COST_MODEL.ns_per_op

    def test_cost_model_immutable(self):
        with pytest.raises(Exception):
            PAPER_COST_MODEL.ns_per_op = 1.0  # frozen dataclass


class TestRunners:
    def test_run_result_observability_fields(self):
        result = run_sieve("FarmRMI", 3, maximum=MAX, packs=PACKS)
        assert result.correct
        assert result.combo == "FarmRMI"
        assert result.filters == 3
        assert result.survivors > 0
        assert result.messages >= result.remote_messages > 0
        assert result.bytes > 0
        assert 0 < result.mean_utilisation < 1
        assert result.detail["cost_charged"] > 0
        assert result.row()[0] == "FarmRMI"

    def test_sequential_has_no_messages(self):
        result = run_sieve("Sequential", 1, maximum=MAX, packs=PACKS)
        assert result.correct
        assert result.messages == 0

    def test_scaling_cost_model_scales_time(self):
        cheap = run_sieve(
            "Sequential", 1, maximum=MAX, packs=PACKS,
            cost_model=CostModel(ns_per_op=1e-9),
        )
        expensive = run_sieve(
            "Sequential", 1, maximum=MAX, packs=PACKS,
            cost_model=CostModel(ns_per_op=10e-9),
        )
        assert expensive.sim_time == pytest.approx(cheap.sim_time * 10, rel=0.01)

    def test_handcoded_farm_and_pipeline(self):
        farm = run_handcoded("farm", 3, maximum=MAX, packs=PACKS)
        pipe = run_handcoded("pipeline", 3, maximum=MAX, packs=PACKS)
        assert farm.correct and pipe.correct
        assert farm.combo == "handcoded-farm"

    def test_unknown_combo_rejected(self):
        from repro.errors import DeploymentError

        with pytest.raises(DeploymentError, match="unknown combination"):
            run_sieve("FarmCarrierPigeon", 2, maximum=MAX, packs=PACKS)

    def test_runs_are_deterministic(self):
        a = run_sieve("FarmMPP", 3, maximum=MAX, packs=PACKS)
        b = run_sieve("FarmMPP", 3, maximum=MAX, packs=PACKS)
        assert a.sim_time == b.sim_time
        assert a.messages == b.messages


class TestExperimentGenerators:
    def test_table1_rows_match_paper(self):
        result = table1()
        assert result.passed
        assert [row["name"] for row in result.rows] == [
            "FarmThreads",
            "PipeRMI",
            "FarmRMI",
            "FarmDRMI",
            "FarmMPP",
        ]

    def test_fig16_reduced_scale_structure(self):
        result = fig16(filters=(1, 3), maximum=MAX, packs=PACKS)
        assert set(result.series) == {"AspectJ", "Java"}
        assert len(result.series["AspectJ"]) == 2
        assert "Figure 16" in result.report
        # at toy scale only the structural checks are meaningful
        assert result.runs

    def test_fig17_reduced_scale_series(self):
        result = fig17(
            filters=(1, 4),
            maximum=MAX,
            packs=PACKS,
            combos=("FarmThreads", "FarmRMI", "FarmMPP"),
        )
        assert set(result.series) == {"FarmThreads", "FarmRMI", "FarmMPP"}
        for series in result.series.values():
            assert series[1] < series[0]  # 4 filters beat 1 everywhere
        assert "Figure 17" in result.report


class TestReportRendering:
    def test_render_series_layout(self):
        text = render_series(
            "My Figure",
            "filters",
            [1, 2],
            {"A": [1.0, 0.5], "B": [2.0, 1.0]},
            bar_for="A",
        )
        assert "My Figure" in text
        assert "filters" in text
        assert "#" in text
        assert "1.000s" in text

    def test_render_table1(self):
        text = render_table1(
            [
                {
                    "name": "X",
                    "partition": "farm",
                    "concurrency": "yes",
                    "distribution": "RMI",
                }
            ]
        )
        assert "Table 1" in text and "farm" in text

    def test_render_checks(self):
        text = render_checks("checks", [("good", True), ("bad", False)])
        assert "[PASS] good" in text and "[FAIL] bad" in text
