"""Weave → unweave → re-weave round-trips.

CPython permanently de-optimises a type's ``tp_new``/``tp_init`` slots
once a Python function has been assigned to ``__new__``/``__init__``
(see the shim discussion at the top of ``weaver.py``): deleting the
attribute afterwards leaves ``object.__new__`` reachable through the
dynamic slot wrapper, which then rejects constructor arguments for every
subclass.  Unweaving installs passthrough shims instead of deleting;
these tests exercise that quirk across repeated cycles, with aspects
re-deployed against the fresh shadows of each re-weave.
"""

from __future__ import annotations

import pytest

from repro.aop import Aspect, around, deploy, undeploy, unweave, weave
from repro.aop.weaver import default_weaver


def make_counterless():
    """A class that defines neither __new__ nor __init__."""

    class Bare:
        def ping(self):
            return "pong"

    return Bare


def make_with_init():
    class Holder:
        def __init__(self, value):
            self.value = value

        def get(self):
            return self.value

    return Holder


def make_with_new():
    class Tracked:
        instances = 0

        def __new__(cls, *args, **kwargs):
            obj = super().__new__(cls)
            Tracked.instances += 1
            return obj

        def __init__(self, tag):
            self.tag = tag

    return Tracked


class TestRepeatedCycles:
    @pytest.mark.parametrize("cycles", [1, 2, 3])
    def test_argumentful_subclass_constructs_after_cycles(self, cycles):
        Holder = make_with_init()

        class Sub(Holder):
            def __init__(self, value, extra):
                super().__init__(value)
                self.extra = extra

        for _ in range(cycles):
            weave(Holder)
            unweave(Holder)
        # the tp_new quirk would raise "object.__new__() takes exactly
        # one argument" here if unweave had deleted the dunders
        sub = Sub(1, 2)
        assert (sub.value, sub.extra) == (1, 2)

    @pytest.mark.parametrize("cycles", [1, 3])
    def test_bare_class_roundtrip_keeps_default_construction(self, cycles):
        Bare = make_counterless()
        for _ in range(cycles):
            weave(Bare)
            unweave(Bare)
        assert Bare().ping() == "pong"
        # the passthrough shims tolerate arguments (unlike bare object()):
        # that permissiveness is the price of dodging the tp_new quirk
        assert Bare(1, 2, 3).ping() == "pong"

    def test_user_defined_new_survives_roundtrip(self):
        Tracked = make_with_new()
        weave(Tracked)
        unweave(Tracked)
        weave(Tracked)
        unweave(Tracked)
        before = Tracked.instances
        obj = Tracked("a")
        assert obj.tag == "a"
        assert Tracked.instances == before + 1


class TestReweaveWithAspects:
    def test_call_advice_applies_to_fresh_shadows_after_reweave(self):
        Bare = make_counterless()
        hits = []

        class Probe(Aspect):
            @around("call(Bare.ping(..))")
            def probe(self, jp):
                hits.append(1)
                return jp.proceed()

        weave(Bare)
        aspect = deploy(Probe())
        Bare().ping()
        assert hits == [1]
        undeploy(aspect)
        unweave(Bare)
        Bare().ping()  # unwoven: no interception
        assert hits == [1]

        weave(Bare)
        deploy(Probe())
        Bare().ping()
        assert hits == [1, 1]

    def test_initialization_advice_after_reweave(self):
        Holder = make_with_init()

        class Tag(Aspect):
            @around("initialization(Holder.new(..))")
            def tag(self, jp):
                obj = jp.proceed()
                obj.tagged = True
                return obj

        weave(Holder)
        aspect = deploy(Tag())
        assert Holder(1).tagged
        undeploy(aspect)
        unweave(Holder)
        assert not hasattr(Holder(2), "tagged")
        weave(Holder)
        deploy(Tag())
        again = Holder(3)
        assert again.tagged and again.get() == 3

    def test_deploy_while_unwoven_then_reweave_attaches(self):
        """An aspect deployed while its target is unwoven must attach to
        the shadows created by a later weave (the weave-time side of the
        static match index)."""
        Bare = make_counterless()
        hits = []

        class Probe(Aspect):
            @around("call(Bare.ping(..))")
            def probe(self, jp):
                hits.append(1)
                return jp.proceed()

        deploy(Probe())
        Bare().ping()
        assert hits == []  # not woven yet
        weave(Bare)
        Bare().ping()
        assert hits == [1]

    def test_undeploy_after_reweave_does_not_touch_stale_shadows(self):
        """A deployment indexed against the *first* weave's shadows must
        not recompile (or crash on) the fresh shadows of a re-weave it
        never matched."""
        Bare = make_counterless()

        class Probe(Aspect):
            @around("call(Bare.ping(..))")
            def probe(self, jp):
                return jp.proceed()

        weave(Bare)
        aspect = deploy(Probe())
        unweave(Bare)
        weave(Bare)  # fresh shadows; deploy-time index is stale
        undeploy(aspect)  # must not raise
        assert Bare().ping() == "pong"

    def test_unweave_prunes_deployment_match_index(self):
        """A long-lived deployment must not accumulate (and pin) shadows
        of classes that have since been unwoven."""

        class Broad(Aspect):
            @around("call(*.ping(..))")
            def probe(self, jp):
                return jp.proceed()

        aspect = deploy(Broad())
        deployment = default_weaver._deployments[-1]
        stats = default_weaver.plan_stats
        for _ in range(5):
            Bare = make_counterless()
            weave(Bare)
            assert any(s.cls is Bare for s in deployment.matched)
            assert stats.count(Bare, "ping") > 0
            unweave(Bare)
            assert not any(s.cls is Bare for s in deployment.matched)
            # counters must not pin ephemeral classes either
            assert stats.count(Bare, "ping") == 0
        undeploy(aspect)

    def test_shim_marked_after_unweave(self):
        Bare = make_counterless()
        weave(Bare)
        unweave(Bare)
        assert getattr(Bare.__new__, "__aop_shim__", False)
        # re-weaving treats the shim as "not defined", not as an original
        weave(Bare)
        unweave(Bare)
        assert getattr(Bare.__new__, "__aop_shim__", False)
        assert not default_weaver.is_woven(Bare)
