"""Property-style equivalence: compiled plans vs the generic interpreter.

For arbitrary mixes of before / after / after_returning / after_throwing
/ around advice (arbitrary precedences, raising targets, proceed with
replacement arguments), whatever specialised impl the plan compiler
picks — single-around, all-around, mixed, or the generic fallback — must
produce byte-identical results, exceptions and advice call ordering to
running the same chain through the generic interpreter.
"""

from __future__ import annotations

import random

import pytest

from repro.aop import (
    Aspect,
    JoinPoint,
    JoinPointKind,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    deploy,
    weave,
)
from repro.aop.advice import run_chain
from repro.aop.weaver import default_weaver

KINDS = ("before", "after", "after_returning", "after_throwing", "around")
DECORATORS = {
    "before": before,
    "after": after,
    "after_returning": after_returning,
    "after_throwing": after_throwing,
    "around": around,
}


def make_target(should_raise: bool):
    class Target:
        def work(self, x):
            if should_raise:
                raise ValueError(f"boom:{x}")
            return x * 2 + 1

    return Target


def make_aspect(tag: str, kind: str, precedence: int, events: list,
                replace_args: bool):
    """One advice of ``kind`` that logs every observation it makes."""

    def body(self, jp):
        if kind == "around":
            events.append((tag, "enter", jp.args))
            if replace_args:
                out = jp.proceed(jp.args[0] + 10)
            else:
                out = jp.proceed()
            events.append((tag, "exit", out, jp.args))
            return out
        if kind == "after_returning":
            events.append((tag, kind, jp.result))
        elif kind == "after_throwing":
            events.append((tag, kind, repr(jp.exception)))
        else:
            events.append((tag, kind, jp.args))

    aspect_cls = type(
        f"Gen_{tag}",
        (Aspect,),
        {
            "precedence": precedence,
            "advice": DECORATORS[kind]("call(Target.work(..))")(body),
        },
    )
    return aspect_cls()


def run_compiled(Target, obj, arg):
    try:
        return ("ok", obj.work(arg))
    except ValueError as exc:
        return ("raise", repr(exc))


def run_interpreted(Target, obj, arg):
    entries, needs_caller = default_weaver.chain(
        Target, "work", JoinPointKind.CALL
    )
    original = getattr(Target, "__aop_originals__")["work"]
    jp = JoinPoint(JoinPointKind.CALL, Target, "work", obj, (arg,), {})
    try:
        return (
            "ok",
            run_chain(entries, jp, lambda *a, **k: original(obj, *a, **k)),
        )
    except ValueError as exc:
        return ("raise", repr(exc))


@pytest.mark.parametrize("seed", range(40))
def test_compiled_paths_match_interpreter(seed):
    rng = random.Random(seed)
    n_advice = rng.randint(1, 6)
    should_raise = rng.random() < 0.3
    Target = make_target(should_raise)
    weave(Target)

    compiled_events: list = []
    interpreted_events: list = []
    # two parallel event sinks, switched between runs
    active = {"sink": compiled_events}

    class Sink(list):
        pass

    events_proxy = Sink()
    events_proxy.append = lambda item: active["sink"].append(item)  # type: ignore[method-assign]

    for i in range(n_advice):
        kind = rng.choice(KINDS)
        precedence = rng.randint(0, 3) * 100
        replace = rng.random() < 0.5
        deploy(make_aspect(f"a{i}", kind, precedence, events_proxy, replace))

    obj = Target.__new__(Target)
    arg = rng.randint(0, 100)

    active["sink"] = compiled_events
    compiled = run_compiled(Target, obj, arg)
    active["sink"] = interpreted_events
    interpreted = run_interpreted(Target, obj, arg)

    assert compiled == interpreted, f"seed {seed}: results diverge"
    assert compiled_events == interpreted_events, (
        f"seed {seed}: advice ordering diverges\n"
        f"compiled:    {compiled_events}\n"
        f"interpreted: {interpreted_events}"
    )


def test_mixed_chain_uses_compiled_path_when_separable():
    """A (before, after, around) mix with befores/afters outermost must
    NOT take the generic interpreter: the impl is the mixed plan (the
    generic closure is recognisable by its needs_caller cell)."""
    Target = make_target(False)
    weave(Target)
    events: list = []
    deploy(make_aspect("b", "before", 300, events, False))
    deploy(make_aspect("f", "after", 200, events, False))
    deploy(make_aspect("a", "around", 100, events, False))
    impl = vars(Target)["work"]
    cells = impl.__code__.co_freevars
    assert "runner" in cells, f"expected the mixed plan, got freevars {cells}"
    assert Target.__new__(Target).work(2) == 5
    assert [e[0] for e in events] == ["b", "a", "a", "f"]


def test_interleaved_chain_compiles():
    """A before *below* an around (higher-precedence around) is not
    separable — it used to force the generic interpreter.  The segment
    compiler folds it into the around's tail instead: the impl is a
    compiled runner tagged ``mixed``, and the interpreter's interleaved
    ordering is preserved."""
    Target = make_target(False)
    weave(Target)
    events: list = []
    deploy(make_aspect("a", "around", 300, events, False))
    deploy(make_aspect("b", "before", 100, events, False))
    impl = vars(Target)["work"]
    assert "runner" in impl.__code__.co_freevars
    assert impl.__aop_plan_kind__ == "mixed"
    assert Target.__new__(Target).work(2) == 5
    # the before runs inside the around's proceed
    assert [(e[0], e[1]) for e in events] == [
        ("a", "enter"), ("b", "before"), ("a", "exit")
    ]


# deliberately non-separable shapes: non-around advice sorted below (and
# between) arounds, including multi-around spines with interleaved
# before/after segments — the chains the segment compiler must fold
# without an interpreter fallback
INTERLEAVED_CHAINS = [
    ("around", "before"),
    ("around", "after"),
    ("around", "after_returning"),
    ("around", "after_throwing"),
    ("before", "around", "before"),
    ("around", "before", "around"),
    ("around", "after", "around", "before"),
    ("before", "around", "after_returning", "around", "after"),
    ("around", "around", "before", "around", "after_throwing", "around"),
]


@pytest.mark.parametrize("kinds", INTERLEAVED_CHAINS)
@pytest.mark.parametrize("should_raise", [False, True])
@pytest.mark.parametrize("replace_args", [False, True])
def test_non_separable_chains_match_interpreter(
    kinds, should_raise, replace_args
):
    """Compiled non-separable chains must match the interpreter
    byte-for-byte: advice ordering, argument substitution through
    ``proceed``, results and exception propagation."""
    Target = make_target(should_raise)
    weave(Target)

    compiled_events: list = []
    interpreted_events: list = []
    active = {"sink": compiled_events}

    class Sink(list):
        pass

    events_proxy = Sink()
    events_proxy.append = lambda item: active["sink"].append(item)  # type: ignore[method-assign]

    # descending precedence pins the chain order to the listed kinds
    for i, kind in enumerate(kinds):
        deploy(
            make_aspect(
                f"a{i}", kind, (len(kinds) - i) * 100, events_proxy,
                replace_args,
            )
        )

    impl = vars(Target)["work"]
    assert "runner" in impl.__code__.co_freevars, (
        f"non-separable chain {kinds} did not compile"
    )

    obj = Target.__new__(Target)
    active["sink"] = compiled_events
    compiled = run_compiled(Target, obj, 7)
    active["sink"] = interpreted_events
    interpreted = run_interpreted(Target, obj, 7)

    assert compiled == interpreted
    assert compiled_events == interpreted_events, (
        f"chain {kinds}: advice ordering diverges\n"
        f"compiled:    {compiled_events}\n"
        f"interpreted: {interpreted_events}"
    )


def test_no_interpreter_calls_on_static_chains():
    """The runtime fallback counter stays at zero across compiled
    dispatches — including non-separable ones — and moves only for
    dynamic-residue chains (here: a ``within`` residue)."""
    Target = make_target(False)
    weave(Target)
    events: list = []
    deploy(make_aspect("a", "around", 300, events, False))
    deploy(make_aspect("b", "before", 100, events, False))
    stats = default_weaver.plan_stats
    before_calls = stats.interpreter_calls
    obj = Target.__new__(Target)
    for i in range(5):
        obj.work(i)
    assert stats.interpreter_calls == before_calls

    class Residue(Aspect):
        @around("call(Target.work(..)) && within(tests.*)")
        def wide(self, jp):
            return jp.proceed()

    deploy(Residue())
    obj.work(1)
    assert stats.interpreter_calls == before_calls + 1
