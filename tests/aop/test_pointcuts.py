"""Pointcut language: parsing, matching, combinators, dynamic residues."""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    around,
    before,
    deploy,
    parse_pointcut,
    weave,
)
from repro.aop.joinpoint import JoinPointKind
from repro.aop.pointcut import (
    NO,
    YES,
    AdviceExecution,
    And,
    Call,
    FalsePointcut,
    Initialization,
    Not,
    Or,
    TruePointcut,
)
from repro.aop.signature import (
    NamePattern,
    ParamsPattern,
    SignaturePattern,
    TypePattern,
    is_subtype,
    register_virtual_base,
    unregister_virtual_base,
)
from repro.errors import PointcutSyntaxError


class Alpha:
    def run(self, x):
        return ("alpha", x)

    def walk(self):
        return "walking"


class Beta(Alpha):
    def run(self, x):
        return ("beta", x)


class TestTypePattern:
    def test_exact_name(self):
        assert TypePattern("Alpha").matches_class(Alpha)
        assert not TypePattern("Alpha").matches_class(Beta)

    def test_wildcard(self):
        assert TypePattern("Al*").matches_class(Alpha)
        assert TypePattern("*a").matches_class(Beta)
        assert not TypePattern("Gamma*").matches_class(Alpha)

    def test_universal(self):
        pat = TypePattern("*")
        assert pat.is_wildcard_any
        assert pat.matches_class(Alpha)
        assert pat.matches_class(int)

    def test_subtypes_plus(self):
        pat = TypePattern("Alpha+")
        assert pat.matches_class(Alpha)
        assert pat.matches_class(Beta)
        assert not pat.matches_class(int)

    def test_qualified_pattern(self):
        pat = TypePattern(f"{__name__}.Alpha")
        assert pat.matches_class(Alpha)
        pat2 = TypePattern("other.module.Alpha")
        assert not pat2.matches_class(Alpha)

    def test_from_class_identity(self):
        pat = TypePattern.from_class(Alpha)
        assert pat.matches_class(Alpha)
        assert not pat.matches_class(Beta)
        assert TypePattern.from_class(Alpha, subtypes=True).matches_class(Beta)

    def test_virtual_subtype_via_registry(self):
        class Marker:
            pass

        try:
            register_virtual_base(Alpha, Marker)
            assert is_subtype(Alpha, Marker)
            assert is_subtype(Beta, Marker)  # inherited through MRO
            assert TypePattern("Marker+").matches_class(Alpha)
            assert TypePattern("Marker+").matches_class(Beta)
        finally:
            unregister_virtual_base(Alpha, Marker)
        assert not is_subtype(Alpha, Marker)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PointcutSyntaxError):
            TypePattern("")
        with pytest.raises(PointcutSyntaxError):
            TypePattern("+")


class TestParamsPattern:
    def test_any(self):
        pat = ParamsPattern.any()
        assert pat.matches(())
        assert pat.matches((1, "a", None))

    def test_empty_matches_no_args(self):
        pat = ParamsPattern([])
        assert pat.matches(())
        assert not pat.matches((1,))

    def test_single_star(self):
        pat = ParamsPattern(["*"])
        assert pat.matches((object(),))
        assert not pat.matches(())
        assert not pat.matches((1, 2))

    def test_typed_params(self):
        pat = ParamsPattern(["int", "str"])
        assert pat.matches((1, "a"))
        assert not pat.matches(("a", 1))

    def test_ellipsis_prefix_suffix(self):
        pat = ParamsPattern(["int", ".."])
        assert pat.matches((1,))
        assert pat.matches((1, "x", "y"))
        assert not pat.matches(("x",))
        pat2 = ParamsPattern(["..", "str"])
        assert pat2.matches(("end",))
        assert pat2.matches((1, 2, "end"))
        assert not pat2.matches((1, 2))

    def test_numpy_int_arrays_match_by_dtype_kind(self):
        np = pytest.importorskip("numpy")
        pat = ParamsPattern(["int"])
        assert pat.matches((np.int64(3),))
        assert pat.matches((np.array([1, 2, 3]),))
        assert not pat.matches((np.array([1.5]),))

    def test_user_class_param(self):
        pat = ParamsPattern(["Alpha+"])
        assert pat.matches((Beta(),))
        assert not pat.matches((3,))


class TestSignatureParsing:
    def test_basic(self):
        sig = SignaturePattern.parse("PrimeFilter.filter(..)")
        assert str(sig.type_pattern) == "PrimeFilter"
        assert str(sig.name_pattern) == "filter"
        assert sig.params.is_any

    def test_no_params_section_means_any(self):
        sig = SignaturePattern.parse("PrimeFilter.filter")
        assert sig.params.is_any

    def test_empty_params_means_zero_args(self):
        sig = SignaturePattern.parse("PrimeFilter.stop()")
        assert not sig.params.is_any
        assert sig.params.matches(())
        assert not sig.params.matches((1,))

    def test_constructor_detection(self):
        assert SignaturePattern.parse("PrimeFilter.new(..)").is_constructor
        assert not SignaturePattern.parse("PrimeFilter.filter(..)").is_constructor

    def test_missing_dot_rejected(self):
        with pytest.raises(PointcutSyntaxError):
            SignaturePattern.parse("filter(..)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(PointcutSyntaxError):
            SignaturePattern.parse("A.f(..")


class TestParser:
    def test_parse_call(self):
        node = parse_pointcut("call(Alpha.run(..))")
        assert isinstance(node, Call)
        assert node.matches_shadow(Alpha, "run", JoinPointKind.CALL) is YES

    def test_call_with_new_normalises_to_initialization(self):
        node = parse_pointcut("call(Alpha.new(..))")
        assert isinstance(node, Initialization)

    def test_parse_initialization(self):
        node = parse_pointcut("initialization(Alpha.new(..))")
        assert isinstance(node, Initialization)
        assert (
            node.matches_shadow(Alpha, "__init__", JoinPointKind.INITIALIZATION)
            is YES
        )
        assert node.matches_shadow(Alpha, "run", JoinPointKind.CALL) is NO

    def test_boolean_operators_and_parens(self):
        node = parse_pointcut(
            "call(Alpha.run(..)) || (call(Alpha.walk(..)) && !adviceexecution())"
        )
        assert isinstance(node, Or)
        assert node.matches_shadow(Alpha, "run", JoinPointKind.CALL) is YES

    def test_not_operator(self):
        node = parse_pointcut("!call(Alpha.run(..))")
        assert isinstance(node, Not)
        assert node.matches_shadow(Alpha, "run", JoinPointKind.CALL) is NO
        assert node.matches_shadow(Alpha, "walk", JoinPointKind.CALL) is YES

    def test_true_false(self):
        assert isinstance(parse_pointcut("true()"), TruePointcut)
        assert isinstance(parse_pointcut("false()"), FalsePointcut)

    def test_adviceexecution(self):
        assert isinstance(parse_pointcut("adviceexecution()"), AdviceExecution)

    def test_whitespace_tolerated(self):
        node = parse_pointcut("  call( Alpha.run(..) )   &&   true() ")
        assert isinstance(node, And)

    def test_errors(self):
        for bad in [
            "",
            "call()",
            "bogus(A.f(..))",
            "call(A.f(..)",
            "call(A.f(..)) &&",
            "call(A.f(..)) extra",
            "adviceexecution(stuff)",
            "within()",
        ]:
            with pytest.raises(PointcutSyntaxError):
                parse_pointcut(bad)

    def test_parse_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse_pointcut(42)


class TestDynamicMatching:
    def test_args_residue_filters_calls(self):
        hits = []

        class OnlyInts(Aspect):
            @before("call(Alpha.run(int))")
            def hit(self, jp):
                hits.append(jp.args)

        weave(Alpha, methods=["run", "walk"])
        deploy(OnlyInts())
        a = Alpha.__new__(Alpha)
        a.run(5)
        a.run("five")
        assert hits == [(5,)]

    def test_target_pointcut_matches_subclass_receiver(self):
        hits = []

        class OnBeta(Aspect):
            # Alpha+ is required to match the override, as in AspectJ
            @before("call(Alpha+.run(..)) && target(Beta)")
            def hit(self, jp):
                hits.append(type(jp.target).__name__)

        # Beta overrides run; weave both classes.
        weave(Alpha, methods=["run"])
        weave(Beta, methods=["run"])
        deploy(OnBeta())
        Alpha.__new__(Alpha).run(1)
        Beta.__new__(Beta).run(1)
        assert hits == ["Beta"]

    def test_wildcard_method_pattern(self):
        hits = []

        class All(Aspect):
            @before("call(Alpha.*(..))")
            def hit(self, jp):
                hits.append(jp.name)

        weave(Alpha, methods=["run", "walk"])
        deploy(All())
        a = Alpha.__new__(Alpha)
        a.run(1)
        a.walk()
        assert hits == ["run", "walk"]

    def test_cflow_pointcut(self):
        class Outer:
            def entry(self, inner):
                return inner.leaf()

        class Inner:
            def leaf(self):
                return "leaf"

        hits = []

        class OnlyUnderEntry(Aspect):
            @before("call(Inner.leaf(..)) && cflow(call(Outer.entry(..)))")
            def hit(self, jp):
                hits.append("under-entry")

        weave(Outer)
        weave(Inner)
        deploy(OnlyUnderEntry())
        inner = Inner()
        inner.leaf()  # not under entry
        Outer().entry(inner)  # under entry
        assert hits == ["under-entry"]

    def test_cflowbelow_excludes_current_joinpoint(self):
        class Rec:
            def f(self, n):
                if n > 0:
                    return self.f(n - 1)
                return 0

        hits = []

        class BelowOnly(Aspect):
            @before("call(Rec.f(..)) && cflowbelow(call(Rec.f(..)))")
            def hit(self, jp):
                hits.append(jp.args)

        weave(Rec)
        deploy(BelowOnly())
        Rec().f(2)
        # top-level f(2) is not below itself; f(1) and f(0) are
        assert hits == [(1,), (0,)]

    def test_adviceexecution_guard(self):
        class Svc:
            def ping(self):
                return "pong"

        core_hits = []

        class Fwd(Aspect):
            @around("call(Svc.ping(..)) && !adviceexecution()")
            def fwd(self, jp):
                core_hits.append("advised")
                jp.target.ping()  # from advice: must NOT re-match
                return jp.proceed()

        weave(Svc)
        deploy(Fwd())
        assert Svc().ping() == "pong"
        assert core_hits == ["advised"]

    def test_within_restricts_to_calling_module(self):
        class Svc:
            def ping(self):
                return "pong"

        hits = []

        class OnlyFromHere(Aspect):
            @before(f"call(Svc.ping(..)) && within({__name__}.*)")
            def hit(self, jp):
                hits.append(jp.caller.module)

        weave(Svc)
        deploy(OnlyFromHere())
        Svc().ping()
        assert hits == [__name__]

    def test_within_rejects_other_modules(self):
        class Svc:
            def ping(self):
                return "pong"

        hits = []

        class OnlyElsewhere(Aspect):
            @before("call(Svc.ping(..)) && within(nonexistent.module.*)")
            def hit(self, jp):
                hits.append(1)

        weave(Svc)
        deploy(OnlyElsewhere())
        Svc().ping()
        assert hits == []


class TestCombinatorAlgebra:
    def test_operator_overloads(self):
        a = parse_pointcut("call(Alpha.run(..))")
        b = parse_pointcut("call(Alpha.walk(..))")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_and_with_string_coercion(self):
        a = parse_pointcut("call(Alpha.run(..))")
        combined = a & "true()"
        assert combined.matches_shadow(Alpha, "run", JoinPointKind.CALL) is YES

    def test_shadow_three_valued_logic(self):
        yes = TruePointcut()
        no = FalsePointcut()
        assert And(yes, no).matches_shadow(Alpha, "run", JoinPointKind.CALL) is NO
        assert Or(yes, no).matches_shadow(Alpha, "run", JoinPointKind.CALL) is YES
        assert Not(no).matches_shadow(Alpha, "run", JoinPointKind.CALL) is YES
