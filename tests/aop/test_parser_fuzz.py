"""Parser robustness: generated expressions round-trip, garbage input
fails with PointcutSyntaxError (never an internal error)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aop import parse_pointcut
from repro.aop.joinpoint import JoinPointKind
from repro.errors import PointcutSyntaxError

COMMON = settings(max_examples=60, deadline=None)

# -- generated valid expressions ------------------------------------------------

ident = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,6}", fullmatch=True)
type_pat = st.one_of(ident, ident.map(lambda s: s + "*"), st.just("*"))
params = st.sampled_from(["..", "", "*", "int, ..", "*, *", "int, str"])


@st.composite
def signatures(draw):
    return f"{draw(type_pat)}.{draw(ident)}({draw(params)})"


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return f"call({draw(signatures())})"
        if choice == 1:
            return f"initialization({draw(type_pat)}.new(..))"
        if choice == 2:
            return f"within({draw(type_pat)})"
        if choice == 3:
            return "adviceexecution()"
        return f"target({draw(type_pat)})"
    op = draw(st.integers(0, 3))
    left = draw(expressions(depth=depth - 1))
    if op == 0:
        return f"!{left}"
    if op == 1:
        return f"cflow({left})"
    right = draw(expressions(depth=depth - 1))
    if op == 2:
        return f"({left} && {right})"
    return f"({left} || {right})"


class Probe:
    def method(self, x):
        return x


class TestGeneratedExpressions:
    @COMMON
    @given(expressions())
    def test_parse_and_evaluate_never_crashes(self, text):
        node = parse_pointcut(text)
        # shadow matching must be total for any class/method/kind
        for kind in JoinPointKind:
            result = node.matches_shadow(Probe, "method", kind)
            assert result in (0, 1, 2)

    @COMMON
    @given(expressions())
    def test_str_round_trips_to_equivalent_shadows(self, text):
        first = parse_pointcut(text)
        second = parse_pointcut(str(first))
        for kind in JoinPointKind:
            assert first.matches_shadow(Probe, "method", kind) == (
                second.matches_shadow(Probe, "method", kind)
            )


class TestGarbageInput:
    @COMMON
    @given(st.text(max_size=40))
    def test_garbage_raises_syntax_error_only(self, text):
        try:
            parse_pointcut(text)
        except PointcutSyntaxError:
            pass  # expected for almost everything

    @COMMON
    @given(st.text(alphabet="()!&|.*,cawlithn ", max_size=30))
    def test_operator_soup_raises_cleanly(self, text):
        try:
            parse_pointcut(text)
        except PointcutSyntaxError:
            pass
