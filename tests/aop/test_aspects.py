"""Aspect declaration semantics: precedence, abstract aspects, named
pointcuts, inter-type declarations, advice overriding."""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    abstract_pointcut,
    after,
    around,
    before,
    declare_parents,
    deploy,
    introduce,
    is_subtype,
    pointcut,
    undeploy,
    weave,
)
from repro.errors import DeploymentError, IntertypeError


def make_service():
    class Service:
        def ping(self):
            return "pong"

        def echo(self, text):
            return text

    return Service


class TestPrecedence:
    def test_higher_precedence_wraps_outermost(self):
        Service = make_service()
        order = []

        def mk(name, level):
            class A(Aspect):
                precedence = level

                @around("call(Service.ping(..))")
                def advice(self, jp):
                    order.append(f"{name}>")
                    result = jp.proceed()
                    order.append(f"<{name}")
                    return result

            A.__name__ = name
            return A()

        weave(Service)
        deploy(mk("low", 1))
        deploy(mk("high", 10))
        Service().ping()
        assert order == ["high>", "low>", "<low", "<high"]

    def test_equal_precedence_uses_deployment_order(self):
        Service = make_service()
        order = []

        def mk(name):
            class A(Aspect):
                @before("call(Service.ping(..))")
                def advice(self, jp):
                    order.append(name)

            return A()

        weave(Service)
        deploy(mk("first"))
        deploy(mk("second"))
        Service().ping()
        assert order == ["first", "second"]

    def test_declaration_order_within_aspect(self):
        Service = make_service()
        order = []

        class A(Aspect):
            @around("call(Service.ping(..))")
            def outer(self, jp):
                order.append("outer>")
                result = jp.proceed()
                order.append("<outer")
                return result

            @around("call(Service.ping(..))")
            def inner(self, jp):
                order.append("inner>")
                result = jp.proceed()
                order.append("<inner")
                return result

        weave(Service)
        deploy(A())
        Service().ping()
        assert order == ["outer>", "inner>", "<inner", "<outer"]

    def test_before_and_after_nest_with_around(self):
        Service = make_service()
        order = []

        class A(Aspect):
            precedence = 10

            @before("call(Service.ping(..))")
            def pre(self, jp):
                order.append("before")

        class B(Aspect):
            precedence = 5

            @around("call(Service.ping(..))")
            def wrap(self, jp):
                order.append("around>")
                result = jp.proceed()
                order.append("<around")
                return result

        class C(Aspect):
            precedence = 1

            @after("call(Service.ping(..))")
            def post(self, jp):
                order.append("after")

        weave(Service)
        deploy(A())
        deploy(B())
        deploy(C())
        Service().ping()
        assert order == ["before", "around>", "after", "<around"]


class TestAbstractAspects:
    def test_abstract_aspect_cannot_deploy(self):
        class AbstractLogger(Aspect):
            targets = abstract_pointcut("what to log")

            @before("targets")
            def log(self, jp):
                pass

        aspect = AbstractLogger()
        assert aspect.is_abstract()
        with pytest.raises(DeploymentError):
            deploy(aspect)

    def test_concrete_subclass_binds_pointcut(self):
        Service = make_service()
        hits = []

        class AbstractLogger(Aspect):
            targets = abstract_pointcut()

            @before("targets")
            def log(self, jp):
                hits.append(jp.name)

        class ServiceLogger(AbstractLogger):
            targets = pointcut("call(Service.ping(..))")

        weave(Service)
        deploy(ServiceLogger())
        svc = Service()
        svc.ping()
        svc.echo("x")
        assert hits == ["ping"]

    def test_instance_attribute_binds_pointcut(self):
        """Binding at construction (how the partition aspects work)."""
        Service = make_service()
        hits = []

        class Generic(Aspect):
            targets = abstract_pointcut()

            def __init__(self, targets=None):
                if targets is not None:
                    self.targets = pointcut(targets)

            @before("targets")
            def log(self, jp):
                hits.append(jp.name)

        weave(Service)
        deploy(Generic(targets="call(Service.echo(..))"))
        svc = Service()
        svc.ping()
        svc.echo("x")
        assert hits == ["echo"]

    def test_named_pointcut_string_indirection(self):
        Service = make_service()
        hits = []

        class A(Aspect):
            mine = "call(Service.ping(..))"  # named pointcut as string

            @before("mine")
            def log(self, jp):
                hits.append(1)

        weave(Service)
        deploy(A())
        Service().ping()
        assert hits == [1]

    def test_unknown_named_pointcut_fails_at_deploy(self):
        class A(Aspect):
            @before("nonexistent_name")
            def log(self, jp):
                pass

        with pytest.raises(DeploymentError):
            deploy(A())

    def test_cyclic_named_pointcut_detected(self):
        class A(Aspect):
            alpha = "alpha"

            @before("alpha")
            def log(self, jp):
                pass

        with pytest.raises(DeploymentError):
            deploy(A())


class TestAdviceOverriding:
    def test_subclass_overrides_inherited_advice(self):
        Service = make_service()
        hits = []

        class Base(Aspect):
            @around("call(Service.ping(..))")
            def advice(self, jp):
                hits.append("base")
                return jp.proceed()

        class Derived(Base):
            @around("call(Service.ping(..))")
            def advice(self, jp):
                hits.append("derived")
                return jp.proceed()

        weave(Service)
        deploy(Derived())
        Service().ping()
        # exactly once, from the subclass
        assert hits == ["derived"]

    def test_subclass_inherits_advice_unchanged(self):
        Service = make_service()
        hits = []

        class Base(Aspect):
            @before("call(Service.ping(..))")
            def advice(self, jp):
                hits.append(type(self).__name__)

        class Derived(Base):
            pass

        weave(Service)
        deploy(Derived())
        Service().ping()
        assert hits == ["Derived"]


class TestIntertype:
    def test_introduce_method(self):
        Service = make_service()

        class Intro(Aspect):
            @introduce(Service)
            def shout(self, text):
                return text.upper()

        aspect = deploy(Intro())
        assert Service().shout("hey") == "HEY"
        undeploy(aspect)
        assert not hasattr(Service, "shout")

    def test_introduce_conflicting_member_rejected(self):
        Service = make_service()

        class Clash(Aspect):
            @introduce(Service)
            def ping(self):  # Service already has ping
                return "hijacked"

        with pytest.raises(IntertypeError):
            deploy(Clash())
        # failed deploy leaves no partial state
        assert Service().ping() == "pong"

    def test_declare_parents_lifecycle(self):
        Service = make_service()

        class Marker:
            pass

        class Declares(Aspect):
            parents = [declare_parents(Service, Marker)]

        aspect = deploy(Declares())
        assert is_subtype(Service, Marker)
        undeploy(aspect)
        assert not is_subtype(Service, Marker)

    def test_declare_parents_self_rejected(self):
        Service = make_service()

        class Bad(Aspect):
            parents = [declare_parents(Service, Service)]

        with pytest.raises(IntertypeError):
            deploy(Bad())

    def test_lifecycle_hooks_run(self):
        events = []

        class Hooked(Aspect):
            @before("call(X.f(..))")
            def advice(self, jp):
                pass

            def on_deploy(self):
                events.append("deployed")

            def on_undeploy(self):
                events.append("undeployed")

        aspect = deploy(Hooked())
        undeploy(aspect)
        assert events == ["deployed", "undeployed"]
