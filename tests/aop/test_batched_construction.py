"""Batched construction: one initialization joinpoint per duplicate set.

Duplication loops ship a :class:`~repro.aop.plan.CtorPack` through a
single ``proceed`` — the inner initialization chain (and the
distribution aspect's create-remote) runs once per set while still
building and exporting one instance per argset.
"""

from __future__ import annotations

import pytest

from repro.aop import Aspect, around, ctor_pack_of, deploy, weave
from repro.aop.plan import CtorPack
from repro.aop.weaver import default_weaver
from repro.parallel import (
    Composition,
    WorkSplitter,
    dynamic_farm_module,
    farm_module,
    heartbeat_module,
    pipeline_module,
)

CREATION = "initialization(Worker.new(..))"
WORK = "call(Worker.step(..))"


def make_worker():
    class Worker:
        def __init__(self, index=0):
            self.index = index

        def step(self, x):
            return (self.index, x)

        def get_boundary(self, side):
            return self.index

        def set_boundary(self, side, value):
            pass

    Worker.__name__ = "Worker"
    return Worker


def indexed_splitter(n):
    return WorkSplitter(
        duplicates=n, ctor_args=lambda a, k, i, count: ((i,), {})
    )


class InitCounter(Aspect):
    """Inner initialization advice: counts chain passes and instances."""

    precedence = 10  # below every partition layer

    def __init__(self, pointcut=CREATION):
        self.pointcut = pointcut
        self.passes = 0
        self.instances_seen = 0
        self.pack_sizes = []

    @around("pointcut")
    def observe(self, jp):
        self.passes += 1
        result = jp.proceed()
        pack = ctor_pack_of(jp)
        if pack is not None:
            self.pack_sizes.append(len(pack))
            self.instances_seen += len(result)
        else:
            self.instances_seen += 1
        return result


@pytest.mark.parametrize(
    "module_builder",
    [farm_module, dynamic_farm_module, heartbeat_module, pipeline_module],
    ids=["farm", "dynamic-farm", "heartbeat", "pipeline"],
)
def test_one_init_joinpoint_per_duplicate_set(module_builder):
    Worker = make_worker()
    counter = InitCounter()
    comp = Composition(
        "t", [module_builder(indexed_splitter(5), CREATION, WORK)]
    )
    weave(Worker)
    deploy(counter)
    with comp.deployed(default_weaver, targets=[Worker]):
        first = Worker()
        aspect = comp.modules[0].coordinator
        assert counter.passes == 1  # ONE chain pass for the whole set
        assert counter.pack_sizes == [5]
        assert counter.instances_seen == 5
        assert len(aspect.instances) == 5
        assert [w.index for w in aspect.instances] == [0, 1, 2, 3, 4]
        assert first is aspect.instances[0]


def test_plain_construction_not_packed():
    Worker = make_worker()
    counter = InitCounter()
    weave(Worker)
    deploy(counter)
    w = Worker(7)
    assert w.index == 7
    assert counter.passes == 1
    assert counter.pack_sizes == []  # ordinary per-instance construction


def test_ctor_pack_normalises_argsets():
    pack = CtorPack([((1,), {}), ([2], {"a": 3})])
    assert len(pack) == 2
    assert pack.argsets == (((1,), {}), ((2,), {"a": 3}))


def test_ctor_pack_of_rejects_non_pack_joinpoints():
    class FakeJp:
        args = (1, 2)
        kwargs = {}

    assert ctor_pack_of(FakeJp()) is None


def test_distribution_exports_each_pack_instance():
    from repro.cluster import paper_testbed
    from repro.middleware.rmi import RmiMiddleware
    from repro.parallel import rmi_distribution_module
    from repro.sim import Simulator

    Worker = make_worker()
    sim = Simulator()
    cluster = paper_testbed(sim)
    middleware = RmiMiddleware(cluster)
    counter = InitCounter()
    comp = Composition(
        "dist",
        [
            farm_module(indexed_splitter(4), CREATION, WORK),
            rmi_distribution_module(middleware, CREATION, WORK),
        ],
    )
    deploy(counter)
    try:
        with comp.deployed(default_weaver, targets=[Worker]):
            Worker()
            aspect = comp.modules[1].aspect
            farm = comp.modules[0].coordinator
            # one batched joinpoint...
            assert counter.passes == 1
            # ...but every worker individually exported, in index order
            assert aspect.count == 4
            refs = [aspect.ref_of(w) for w in farm.workers]
            assert all(ref is not None for ref in refs)
            assert len({ref.object_id for ref in refs}) == 4
            assert len(middleware.registry.names()) == 4
    finally:
        middleware.shutdown()
        sim.shutdown()
