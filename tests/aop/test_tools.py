"""Introspection tools: explain, weaving_report, trace_advice."""

from __future__ import annotations

from repro.aop import Aspect, around, before, deploy, weave
from repro.aop.tools import explain, trace_advice, weaving_report


def make_machine():
    class Machine:
        def __init__(self):
            self.state = 0

        def start(self):
            self.state = 1
            return "started"

        def stop(self):
            self.state = 0

    return Machine


class TestExplain:
    def test_inert_method(self):
        Machine = make_machine()
        weave(Machine)
        text = explain(Machine, "start")
        assert "no advice applies" in text

    def test_chain_listing_order_and_residues(self):
        Machine = make_machine()

        class Outer(Aspect):
            precedence = 10

            @around("call(Machine.start(..))")
            def wrap(self, jp):
                return jp.proceed()

        class Inner(Aspect):
            precedence = 1

            @before("call(Machine.start(..)) && !adviceexecution()")
            def note(self, jp):
                pass

        weave(Machine)
        deploy(Outer())
        deploy(Inner())
        text = explain(Machine, "start")
        assert text.index("Outer.wrap") < text.index("Inner.note")
        assert "dynamic residue" in text  # the adviceexecution residue
        assert "around" in text and "before" in text

    def test_initialization_chain_shown(self):
        Machine = make_machine()

        class Ctor(Aspect):
            @around("initialization(Machine.new(..))")
            def make(self, jp):
                return jp.proceed()

        weave(Machine)
        deploy(Ctor())
        text = explain(Machine, "start")
        assert "[initialization]" in text


class TestWeavingReport:
    def test_lists_classes_and_aspects(self):
        Machine = make_machine()

        class A(Aspect):
            @before("call(Machine.start(..))")
            def note(self, jp):
                pass

        weave(Machine)
        deploy(A())
        report = weaving_report()
        assert "Machine" in report
        assert "start" in report and "stop" in report
        assert "A (precedence 0, 1 advice)" in report


class TestTraceAdvice:
    def test_records_executions_in_order(self):
        Machine = make_machine()

        class First(Aspect):
            precedence = 2

            @before("call(Machine.start(..))")
            def one(self, jp):
                pass

        class Second(Aspect):
            precedence = 1

            @before("call(Machine.start(..))")
            def two(self, jp):
                pass

        weave(Machine)
        deploy(First())
        deploy(Second())
        machine = Machine()
        with trace_advice() as trace:
            machine.start()
            machine.stop()  # no advice -> nothing recorded
        assert len(trace) == 2
        assert [row[0] for row in trace.rows] == ["First", "Second"]
        assert trace.of_aspect("First")[0][2] == "Machine.start"
        assert "First" in trace.format()

    def test_tracing_stops_after_block(self):
        Machine = make_machine()

        class A(Aspect):
            @before("call(Machine.start(..))")
            def note(self, jp):
                pass

        weave(Machine)
        deploy(A())
        machine = Machine()
        with trace_advice() as trace:
            machine.start()
        machine.start()
        assert len(trace) == 1
