"""Advanced weaving behaviours: isolated weavers, pickling woven
instances, shim semantics after unweave, wildcard class patterns,
interactions between multiple aspects on construction."""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.aop import Aspect, around, before, deploy, undeploy, weave
from repro.aop.weaver import Weaver, default_weaver


class Picklee:
    """Module-level so pickle can find it."""

    def __init__(self, value):
        self.value = value

    def double(self):
        return self.value * 2


class TestIsolatedWeavers:
    def test_private_weaver_does_not_touch_default(self):
        class Thing:
            def go(self):
                return "go"

        mine = Weaver()
        mine.weave(Thing)
        assert mine.is_woven(Thing)
        assert not default_weaver.is_woven(Thing)

        hits = []

        class A(Aspect):
            @before("call(Thing.go(..))")
            def note(self, jp):
                hits.append(1)

        mine.deploy(A())
        Thing().go()
        assert hits == [1]
        mine.reset()
        Thing().go()
        assert hits == [1]

    def test_reset_clears_everything(self):
        class Thing:
            def go(self):
                return 1

        weaver = Weaver()
        weaver.weave(Thing)

        class A(Aspect):
            @before("call(Thing.go(..))")
            def note(self, jp):
                pass

        weaver.deploy(A())
        weaver.reset()
        assert weaver.deployed == ()
        assert weaver.woven_classes == ()


class TestPicklingWovenInstances:
    def test_pickle_roundtrip_does_not_retrigger_creation_advice(self):
        created = []

        class Count(Aspect):
            @around("initialization(Picklee.new(..))")
            def count(self, jp):
                created.append(1)
                return jp.proceed()

        weave(Picklee)
        deploy(Count())
        obj = Picklee(21)
        assert created == [1]
        # transport through the serializer path (clone)
        clone = copy.deepcopy(obj)
        assert clone.double() == 42
        assert created == [1], "deepcopy must not re-run initialization advice"

    def test_plain_pickle_of_woven_instance(self):
        weave(Picklee)
        obj = Picklee(7)
        blob = pickle.dumps(obj)
        from repro.aop.cflow import bypassing_construction

        with bypassing_construction():
            restored = pickle.loads(blob)
        assert restored.double() == 14


class TestShimSemantics:
    def test_subclass_constructible_after_weave_unweave_cycle(self):
        class Base:
            def __init__(self, x):
                self.x = x

        class Child(Base):
            def __init__(self, x, y):
                super().__init__(x)
                self.y = y

        weave(Base)
        default_weaver.unweave(Base)
        child = Child(1, 2)  # regression: CPython tp_new slot quirk
        assert (child.x, child.y) == (1, 2)

    def test_reweave_after_unweave_works(self):
        class Thing:
            def __init__(self, v):
                self.v = v

            def get(self):
                return self.v

        weave(Thing)
        default_weaver.unweave(Thing)
        weave(Thing)

        class Tag(Aspect):
            @around("initialization(Thing.new(..))")
            def tag(self, jp):
                obj = jp.proceed()
                obj.tagged = True
                return obj

        deploy(Tag())
        thing = Thing(5)
        assert thing.tagged and thing.get() == 5


class TestWildcardClassPatterns:
    def test_star_pattern_spans_classes(self):
        class AlphaService:
            def run(self):
                return "a"

        class BetaService:
            def run(self):
                return "b"

        hits = []

        class All(Aspect):
            @before("call(*Service.run(..))")
            def note(self, jp):
                hits.append(jp.cls.__name__)

        weave(AlphaService)
        weave(BetaService)
        deploy(All())
        AlphaService().run()
        BetaService().run()
        assert hits == ["AlphaService", "BetaService"]


class TestConstructionInteractions:
    def test_two_aspects_nest_on_initialization(self):
        class Widget:
            def __init__(self):
                self.marks = []

        class Outer(Aspect):
            precedence = 10

            @around("initialization(Widget.new(..))")
            def outer(self, jp):
                obj = jp.proceed()
                obj.marks.append("outer")
                return obj

        class Inner(Aspect):
            precedence = 1

            @around("initialization(Widget.new(..))")
            def inner(self, jp):
                obj = jp.proceed()
                obj.marks.append("inner")
                return obj

        weave(Widget)
        deploy(Outer())
        deploy(Inner())
        widget = Widget()
        # inner advice runs closest to construction
        assert widget.marks == ["inner", "outer"]

    def test_outer_multi_proceed_runs_inner_each_time(self):
        class Widget:
            def __init__(self):
                pass

        inner_runs = []

        class Outer(Aspect):
            precedence = 10

            @around("initialization(Widget.new(..))")
            def outer(self, jp):
                first = jp.proceed()
                jp.proceed()
                jp.proceed()
                return first

        class Inner(Aspect):
            precedence = 1

            @around("initialization(Widget.new(..))")
            def inner(self, jp):
                inner_runs.append(1)
                return jp.proceed()

        weave(Widget)
        deploy(Outer())
        deploy(Inner())
        Widget()
        assert len(inner_runs) == 3

    def test_undeploy_mid_sequence_changes_construction(self):
        class Widget:
            def __init__(self):
                self.tagged = False

        class Tag(Aspect):
            @around("initialization(Widget.new(..))")
            def tag(self, jp):
                obj = jp.proceed()
                obj.tagged = True
                return obj

        weave(Widget)
        aspect = deploy(Tag())
        assert Widget().tagged
        undeploy(aspect)
        assert not Widget().tagged
