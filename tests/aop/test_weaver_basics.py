"""Weaving + advice basics: the mechanics of paper Section 3."""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    deploy,
    raw_construct,
    undeploy,
    unweave,
    weave,
)
from repro.aop.weaver import default_weaver, is_woven
from repro.errors import ProceedError, WeaveError


def make_point():
    """Fresh Point class per test (weaving mutates the class)."""

    class Point:
        def __init__(self):
            self.x = 0
            self.y = 0

        def move_x(self, delta):
            self.x += delta
            return self.x

        def move_y(self, delta):
            self.y += delta
            return self.y

    return Point


class TestWeaving:
    def test_woven_class_behaves_identically_without_aspects(self):
        Point = make_point()
        weave(Point)
        p = Point()
        assert p.move_x(10) == 10
        assert p.move_y(5) == 5
        assert (p.x, p.y) == (10, 5)

    def test_weave_is_idempotent(self):
        Point = make_point()
        weave(Point)
        weave(Point)
        assert Point().move_x(1) == 1

    def test_is_woven_flag(self):
        Point = make_point()
        assert not is_woven(Point)
        weave(Point)
        assert is_woven(Point)

    def test_unweave_restores_original_methods(self):
        Point = make_point()
        original = Point.move_x
        weave(Point)
        assert Point.move_x is not original
        unweave(Point)
        assert Point.move_x is original
        assert Point().move_x(3) == 3

    def test_unweave_unwoven_class_raises(self):
        Point = make_point()
        with pytest.raises(WeaveError):
            unweave(Point)

    def test_weave_non_class_raises(self):
        with pytest.raises(WeaveError):
            weave(42)

    def test_weave_specific_methods_only(self):
        Point = make_point()
        weave(Point, methods=["move_x"])
        calls = []

        class Log(Aspect):
            @before("call(Point.move*(..))")
            def log(self, jp):
                calls.append(jp.name)

        deploy(Log())
        p = Point()
        p.move_x(1)
        p.move_y(1)  # not woven -> not intercepted
        assert calls == ["move_x"]

    def test_weave_unknown_method_raises(self):
        Point = make_point()
        with pytest.raises(WeaveError):
            weave(Point, methods=["no_such_method"])


class TestAdviceKinds:
    def test_before_advice_runs_first(self):
        Point = make_point()
        order = []

        class A(Aspect):
            @before("call(Point.move_x(..))")
            def note(self, jp):
                order.append("before")

        weave(Point)
        deploy(A())
        p = Point()
        p.move_x(2)
        order.append("after-call")
        assert order == ["before", "after-call"]

    def test_around_advice_replaces_and_proceeds(self):
        Point = make_point()

        class Double(Aspect):
            @around("call(Point.move_x(..))")
            def double(self, jp):
                (delta,) = jp.args
                return jp.proceed(delta * 2)

        weave(Point)
        deploy(Double())
        p = Point()
        assert p.move_x(10) == 20
        assert p.x == 20

    def test_around_can_skip_proceed(self):
        Point = make_point()

        class Block(Aspect):
            @around("call(Point.move_x(..))")
            def block(self, jp):
                return -1

        weave(Point)
        deploy(Block())
        p = Point()
        assert p.move_x(10) == -1
        assert p.x == 0  # original never ran

    def test_around_can_proceed_multiple_times(self):
        Point = make_point()

        class Twice(Aspect):
            @around("call(Point.move_x(..))")
            def twice(self, jp):
                jp.proceed()
                return jp.proceed()

        weave(Point)
        deploy(Twice())
        p = Point()
        assert p.move_x(5) == 10
        assert p.x == 10

    def test_after_returning_sees_result(self):
        Point = make_point()
        seen = []

        class Observe(Aspect):
            @after_returning("call(Point.move_x(..))")
            def observe(self, jp):
                seen.append(jp.result)

        weave(Point)
        deploy(Observe())
        Point().move_x(7)
        assert seen == [7]

    def test_after_throwing_sees_exception_and_reraises(self):
        class Boom:
            def explode(self):
                raise ValueError("bang")

        seen = []

        class Catcher(Aspect):
            @after_throwing("call(Boom.explode(..))")
            def caught(self, jp):
                seen.append(type(jp.exception).__name__)

        weave(Boom)
        deploy(Catcher())
        with pytest.raises(ValueError):
            Boom().explode()
        assert seen == ["ValueError"]

    def test_after_finally_runs_on_both_paths(self):
        class Maybe:
            def work(self, ok):
                if not ok:
                    raise RuntimeError("no")
                return "yes"

        runs = []

        class Fin(Aspect):
            @after("call(Maybe.work(..))")
            def fin(self, jp):
                runs.append("fin")

        weave(Maybe)
        deploy(Fin())
        m = Maybe()
        assert m.work(True) == "yes"
        with pytest.raises(RuntimeError):
            m.work(False)
        assert runs == ["fin", "fin"]

    def test_proceed_outside_around_raises(self):
        Point = make_point()
        captured = {}

        class Cap(Aspect):
            @before("call(Point.move_x(..))")
            def cap(self, jp):
                captured["jp"] = jp

        weave(Point)
        deploy(Cap())
        Point().move_x(1)
        with pytest.raises(ProceedError):
            captured["jp"].proceed()


class TestPlugUnplug:
    """The paper's core claim: concerns can be (un)plugged on the fly."""

    def test_undeploy_disables_advice(self):
        Point = make_point()
        count = [0]

        class C(Aspect):
            @before("call(Point.move_x(..))")
            def c(self, jp):
                count[0] += 1

        weave(Point)
        aspect = deploy(C())
        p = Point()
        p.move_x(1)
        undeploy(aspect)
        p.move_x(1)
        assert count[0] == 1

    def test_redeploy_after_undeploy(self):
        Point = make_point()
        count = [0]

        class C(Aspect):
            @before("call(Point.move_x(..))")
            def c(self, jp):
                count[0] += 1

        weave(Point)
        a = C()
        deploy(a)
        undeploy(a)
        deploy(a)
        Point().move_x(1)
        assert count[0] == 1

    def test_deploying_same_instance_twice_raises(self):
        from repro.errors import DeploymentError

        class C(Aspect):
            @before("call(X.f(..))")
            def c(self, jp):
                pass

        a = C()
        deploy(a)
        with pytest.raises(DeploymentError):
            deploy(a)

    def test_undeploying_undeployed_raises(self):
        from repro.errors import DeploymentError

        class C(Aspect):
            @before("call(X.f(..))")
            def c(self, jp):
                pass

        with pytest.raises(DeploymentError):
            undeploy(C())

    def test_deploy_with_targets_weaves_them(self):
        Point = make_point()
        count = [0]

        class C(Aspect):
            @before("call(Point.move*(..))")
            def c(self, jp):
                count[0] += 1

        deploy(C(), targets=[Point])
        assert is_woven(Point)
        Point().move_x(1)
        assert count[0] == 1


class TestConstructionInterception:
    def test_initialization_around_controls_instance(self):
        Point = make_point()

        class Tag(Aspect):
            @around("initialization(Point.new(..))")
            def tag(self, jp):
                obj = jp.proceed()
                obj.tagged = True
                return obj

        weave(Point)
        deploy(Tag())
        p = Point()
        assert p.tagged is True
        assert p.x == 0  # original __init__ ran exactly once

    def test_initialization_proceed_multiple_creates_fresh_instances(self):
        """Object duplication — paper Figure 4."""

        class Filter:
            def __init__(self, lo, hi):
                self.lo, self.hi = lo, hi

        created = []

        class Duplicate(Aspect):
            @around("initialization(Filter.new(..))")
            def dup(self, jp):
                for i in range(3):
                    obj = jp.proceed(i, i + 10)
                    created.append(obj)
                return created[0]

        weave(Filter)
        deploy(Duplicate())
        first = Filter(2, 100)
        assert first is created[0]
        assert len({id(o) for o in created}) == 3
        assert [(o.lo, o.hi) for o in created] == [(0, 10), (1, 11), (2, 12)]

    def test_initialization_advice_may_return_other_object(self):
        class Impl:
            def __init__(self):
                self.kind = "impl"

        class Swap(Aspect):
            @around("initialization(Impl.new(..))")
            def swap(self, jp):
                return "not-an-impl"

        weave(Impl)
        deploy(Swap())
        assert Impl() == "not-an-impl"

    def test_construction_inside_advice_is_not_reintercepted(self):
        """Paper: the creation pointcut only sees core-functionality news."""

        class Widget:
            def __init__(self):
                self.nested = None

        count = [0]

        class Make(Aspect):
            @around("initialization(Widget.new(..))")
            def make(self, jp):
                count[0] += 1
                obj = jp.proceed()
                obj.nested = Widget()  # direct construction from advice
                return obj

        weave(Widget)
        deploy(Make())
        w = Widget()
        assert count[0] == 1
        assert isinstance(w.nested, Widget)
        assert w.nested.nested is None

    def test_raw_construct_bypasses_interception(self):
        class Thing:
            def __init__(self, v):
                self.v = v

        class Never(Aspect):
            @around("initialization(Thing.new(..))")
            def never(self, jp):
                raise AssertionError("should not run")

        weave(Thing)
        deploy(Never())
        t = raw_construct(Thing, 9)
        assert t.v == 9

    def test_call_inside_advice_is_reintercepted(self):
        """Paper Figure 7 block 3: forwarding applies recursively."""

        class Stage:
            def __init__(self):
                self.seen = []

            def compute(self, depth):
                self.seen.append(depth)
                return depth

        class Forward(Aspect):
            @around("call(Stage.compute(..))")
            def fwd(self, jp):
                result = jp.proceed()
                (depth,) = jp.args
                if depth < 3:
                    jp.target.compute(depth + 1)  # re-intercepted
                return result

        weave(Stage)
        deploy(Forward())
        s = Stage()
        s.compute(0)
        assert s.seen == [0, 1, 2, 3]

    def test_unweave_restores_construction(self):
        Point = make_point()

        class Tag(Aspect):
            @around("initialization(Point.new(..))")
            def tag(self, jp):
                obj = jp.proceed()
                obj.tagged = True
                return obj

        weave(Point)
        a = deploy(Tag())
        assert Point().tagged
        undeploy(a)
        unweave(Point)
        assert not hasattr(Point(), "tagged")

    def test_constructor_args_flow_through(self):
        class Filter:
            def __init__(self, lo, hi):
                self.lo, self.hi = lo, hi

        class Shift(Aspect):
            @around("initialization(Filter.new(..))")
            def shift(self, jp):
                lo, hi = jp.args
                return jp.proceed(lo + 1, hi + 1)

        weave(Filter)
        deploy(Shift())
        f = Filter(2, 100)
        assert (f.lo, f.hi) == (3, 101)


class TestWeaverRegistry:
    def test_deployed_listing(self):
        class A(Aspect):
            @before("call(X.f(..))")
            def f(self, jp):
                pass

        a = A()
        deploy(a)
        assert default_weaver.deployed == (a,)
        assert default_weaver.is_deployed(a)
