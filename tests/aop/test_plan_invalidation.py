"""Targeted plan invalidation: deploy/undeploy must recompile only the
shadows whose pointcuts can actually match (the static shadow→deployment
index), not every woven class in the process.

Regression for the global-epoch behaviour the interpreted weaver had:
any deploy bumped one global epoch, invalidating every shadow's cached
chain — exactly wrong for re-plugging aspects under heavy traffic.
"""

from __future__ import annotations

import pytest

from repro.aop import Aspect, around, cflow, deploy, undeploy, weave
from repro.aop.joinpoint import JoinPointKind
from repro.aop.plan import Shadow
from repro.aop.weaver import default_weaver


def make_jacobi():
    class Jacobi:
        def step(self, n):
            return n

        def residual(self):
            return 0.0

    return Jacobi


def make_primes():
    class Primes:
        def filter(self, pack):
            return pack

        def count(self):
            return 0

    return Primes


def jacobi_aspect():
    class JacobiTrace(Aspect):
        @around("call(Jacobi.*(..))")
        def trace(self, jp):
            return jp.proceed()

    return JacobiTrace()


class TestTargetedInvalidation:
    def test_deploy_does_not_recompile_unrelated_shadows(self):
        Jacobi, Primes = make_jacobi(), make_primes()
        weave(Jacobi)
        weave(Primes)
        stats = default_weaver.plan_stats
        primes_before = {
            name: stats.count(Primes, name) for name in ("filter", "count")
        }
        jacobi_before = stats.count(Jacobi, "step")

        deploy(jacobi_aspect())

        assert stats.count(Jacobi, "step") == jacobi_before + 1
        for name, count in primes_before.items():
            assert stats.count(Primes, name) == count, (
                f"deploying a Jacobi.* aspect recompiled Primes.{name}"
            )

    def test_undeploy_recompiles_only_matched_shadows(self):
        Jacobi, Primes = make_jacobi(), make_primes()
        weave(Jacobi)
        weave(Primes)
        aspect = deploy(jacobi_aspect())
        stats = default_weaver.plan_stats
        primes_before = stats.snapshot()

        undeploy(aspect)

        after = stats.snapshot()
        for (cls, name, kind), count in primes_before.items():
            if cls is Primes:
                assert after[(cls, name, kind)] == count
        assert (
            after[(Jacobi, "step", JoinPointKind.CALL)]
            == primes_before[(Jacobi, "step", JoinPointKind.CALL)] + 1
        )

    def test_compile_hook_reports_shadows(self):
        Jacobi, Primes = make_jacobi(), make_primes()
        weave(Jacobi)
        weave(Primes)
        seen: list[Shadow] = []
        default_weaver.plan_stats.hooks.append(seen.append)
        try:
            deploy(jacobi_aspect())
        finally:
            default_weaver.plan_stats.hooks.clear()
        assert seen, "deploy compiled no plans"
        assert all(shadow.cls is Jacobi for shadow in seen)
        assert {s.name for s in seen} <= {"step", "residual", "__init__"}

    def test_advice_still_applies_after_targeted_recompile(self):
        Jacobi, Primes = make_jacobi(), make_primes()
        weave(Jacobi)
        weave(Primes)
        calls = []

        class JacobiTrace(Aspect):
            @around("call(Jacobi.step(..))")
            def trace(self, jp):
                calls.append(jp.name)
                return jp.proceed()

        aspect = deploy(JacobiTrace())
        assert Jacobi().step(3) == 3
        assert Primes().filter([1]) == [1]
        assert calls == ["step"]
        undeploy(aspect)
        assert Jacobi().step(3) == 3
        assert calls == ["step"]

    def test_inert_plan_is_marked_and_advised_plan_is_not(self):
        Jacobi = make_jacobi()
        weave(Jacobi)
        assert getattr(Jacobi.step, "__aop_inert__", False)
        aspect = deploy(jacobi_aspect())
        assert not getattr(Jacobi.step, "__aop_inert__", False)
        assert getattr(Jacobi.step, "__aop_dispatcher__", False)
        undeploy(aspect)
        assert getattr(Jacobi.step, "__aop_inert__", False)

    def test_cflow_deploy_recompiles_everything(self):
        """Flow-sensitive deployment flips the inert plan shape globally
        (stack maintenance on/off), so it must recompile all shadows."""
        Jacobi, Primes = make_jacobi(), make_primes()
        weave(Jacobi)
        weave(Primes)
        stats = default_weaver.plan_stats
        before = stats.count(Primes, "filter")

        class FlowSensitive(Aspect):
            @around(cflow("call(Jacobi.step(..))") & "call(Jacobi.residual(..))")
            def inner(self, jp):
                return jp.proceed()

        aspect = deploy(FlowSensitive())
        assert stats.count(Primes, "filter") == before + 1
        undeploy(aspect)
        assert stats.count(Primes, "filter") == before + 2

    def test_wildcard_within_deploy_invalidates_broadly(self):
        """A within() residue matches MAYBE everywhere — the index must
        treat MAYBE as 'can affect this shadow'."""
        Jacobi, Primes = make_jacobi(), make_primes()
        weave(Jacobi)
        weave(Primes)
        stats = default_weaver.plan_stats
        before = stats.count(Primes, "filter")

        class Wide(Aspect):
            @around("call(*.*(..)) && within(tests.*)")
            def wide(self, jp):
                return jp.proceed()

        deploy(Wide())
        assert stats.count(Primes, "filter") == before + 1


class TestDeclareParentsInvalidation:
    """declare_parents changes the subtype relation that *other*
    deployments' ``Base+`` pointcuts match against — such deploys must
    rebuild every deployment's match index, not just their own."""

    def _setup(self):
        from repro.aop import declare_parents

        class Base:
            pass

        class C:
            def run(self):
                return "run"

        calls = []

        class Subtyped(Aspect):
            @around("call(Base+.run(..))")
            def advise(self, jp):
                calls.append(jp.name)
                return jp.proceed()

        class Reparent(Aspect):
            parents = (declare_parents(C, Base),)

        weave(C)
        return Base, C, calls, Subtyped, Reparent

    def test_parent_declaration_activates_existing_subtype_pointcut(self):
        Base, C, calls, Subtyped, Reparent = self._setup()
        deploy(Subtyped())
        C().run()
        assert calls == []  # C is not a Base yet
        deploy(Reparent())  # now it is — Subtyped must attach to C.run
        C().run()
        assert calls == ["run"]

    def test_parent_undeclaration_detaches_subtype_pointcut(self):
        Base, C, calls, Subtyped, Reparent = self._setup()
        reparent = deploy(Reparent())
        deploy(Subtyped())
        C().run()
        assert calls == ["run"]
        undeploy(reparent)  # C is no longer a Base — advice must detach
        C().run()
        assert calls == ["run"]


class TestPlanShapes:
    def test_single_around_fast_path_proceed_semantics(self):
        Jacobi = make_jacobi()
        weave(Jacobi)
        seen = []

        class Doubler(Aspect):
            @around("call(Jacobi.step(..))")
            def double(self, jp):
                seen.append(jp.args)
                first = jp.proceed()
                second = jp.proceed(first + 10)  # replacement args
                assert jp.args == seen[-1]  # level view restored
                return second

        deploy(Doubler())
        assert Jacobi().step(5) == 15
        assert seen == [(5,)]

    def test_fast_path_exception_restores_state(self):
        Jacobi = make_jacobi()
        weave(Jacobi)

        class Boom(Aspect):
            @around("call(Jacobi.step(..))")
            def boom(self, jp):
                raise RuntimeError("advice failed")

        deploy(Boom())
        obj = Jacobi()
        with pytest.raises(RuntimeError):
            obj.step(1)
        from repro.aop.cflow import advice_depth, current_stack

        assert current_stack() == []
        assert advice_depth() == 0
