"""Pack-granular dispatch: batched_entry / BatchJoinPoint / batch plans.

Covers the batched-entry contract (one advice pass and one
BatchJoinPoint per pack, per-item results in order), its fallbacks,
plan invalidation on deploy/undeploy, and the regression that unweave
prunes batch plans and their PlanStats counters.
"""

from __future__ import annotations

import pytest

import repro.aop.plan as plan_mod
from repro.aop import (
    Aspect,
    BatchJoinPoint,
    after,
    around,
    batched_entry,
    before,
    deploy,
    undeploy,
    weave,
    unweave,
)
from repro.aop.plan import MethodTable
from repro.aop.weaver import default_weaver


def make_target():
    class Target:
        def work(self, x, bias=0):
            return x * 2 + bias

    return Target


PIECES = [((1,), {}), ((2,), {"bias": 10}), ((3,), {})]
EXPECTED = [2, 14, 6]


class _CountingBatchJP(BatchJoinPoint):
    __slots__ = ()
    allocations = 0

    def __init__(self, *args, **kwargs):
        type(self).allocations += 1
        super().__init__(*args, **kwargs)


@pytest.fixture()
def count_batch_jps(monkeypatch):
    _CountingBatchJP.allocations = 0
    monkeypatch.setattr(plan_mod, "BatchJoinPoint", _CountingBatchJP)
    return _CountingBatchJP


class TestBatchedEntryContract:
    def test_unwoven_object_falls_back_to_plain_loop(self):
        Target = make_target()
        assert batched_entry(Target(), "work")(PIECES) == EXPECTED

    def test_instance_override_wins(self):
        Target = make_target()
        weave(Target)
        obj = Target()
        obj.work = lambda x, bias=0: -x
        assert batched_entry(obj, "work")([((5,), {})]) == [-5]

    def test_woven_inert_allocates_no_joinpoints(self, count_batch_jps):
        Target = make_target()
        weave(Target)
        assert batched_entry(Target(), "work")(PIECES) == EXPECTED
        assert count_batch_jps.allocations == 0

    def test_advised_pack_runs_advice_once(self, count_batch_jps):
        Target = make_target()
        weave(Target)
        seen = []

        class Observe(Aspect):
            @around("call(Target.work(..))")
            def observe(self, jp):
                seen.append((jp.item_count, jp.merged_view()))
                return jp.proceed()

        deploy(Observe())
        assert batched_entry(Target(), "work")(PIECES) == EXPECTED
        assert count_batch_jps.allocations == 1  # ONE joinpoint per pack
        assert seen == [(3, ((1, 2, 3), {"bias": 10}))]

    def test_proceed_with_replacement_pack(self):
        Target = make_target()
        weave(Target)

        class Halve(Aspect):
            @around("call(Target.work(..))")
            def halve(self, jp):
                return jp.proceed(tuple(jp.pieces)[:1])

        deploy(Halve())
        assert batched_entry(Target(), "work")(PIECES) == [2]

    def test_mixed_chain_batched(self):
        Target = make_target()
        weave(Target)
        events = []

        class Pre(Aspect):
            precedence = 300

            @before("call(Target.work(..))")
            def pre(self, jp):
                events.append(("before", jp.item_count))

        class Post(Aspect):
            precedence = 200

            @after("call(Target.work(..))")
            def post(self, jp):
                events.append(("after",))

        class Wrap(Aspect):
            precedence = 100

            @around("call(Target.work(..))")
            def wrap(self, jp):
                events.append(("around",))
                return jp.proceed()

        deploy(Pre())
        deploy(Post())
        deploy(Wrap())
        assert batched_entry(Target(), "work")(PIECES) == EXPECTED
        assert events == [("before", 3), ("around",), ("after",)]

    def test_call_piece_shaped_items(self):
        class Piece:
            def __init__(self, args, kwargs=None):
                self.args = args
                self.kwargs = kwargs or {}

        Target = make_target()
        weave(Target)
        assert batched_entry(Target(), "work")(
            [Piece((4,)), Piece((5,), {"bias": 1})]
        ) == [8, 11]


class TestBatchPlanInvalidation:
    def test_deploy_invalidates_cached_batch_plan(self):
        Target = make_target()
        weave(Target)
        obj = Target()
        assert batched_entry(obj, "work")([((1,), {})]) == [2]

        class Shift(Aspect):
            @around("call(Target.work(..))")
            def shift(self, jp):
                return [r + 100 for r in jp.proceed()]

        aspect = deploy(Shift())
        assert batched_entry(obj, "work")([((1,), {})]) == [102]
        undeploy(aspect)
        assert batched_entry(obj, "work")([((1,), {})]) == [2]

    def test_batch_compiles_are_counted_and_lazy(self):
        Target = make_target()
        weave(Target)
        stats = default_weaver.plan_stats
        assert stats.batch_count(Target, "work") == 0
        entry = batched_entry(Target(), "work")
        assert stats.batch_count(Target, "work") == 1
        entry(PIECES)
        batched_entry(Target(), "work")(PIECES)  # cached — no recompile
        assert stats.batch_count(Target, "work") == 2 - 1

    def test_unweave_prunes_batch_plans_and_counters(self):
        """Regression: unweave must prune batch plans exactly like call
        plans — PlanStats counters (batch included) and the shadow-held
        compiled impls must not outlive the class."""
        Target = make_target()
        weave(Target)
        batched_entry(Target(), "work")(PIECES)
        stats = default_weaver.plan_stats
        assert stats.batch_count(Target, "work") == 1
        unweave(Target)
        assert stats.batch_count(Target, "work") == 0
        assert not any(key[0] is Target for key in stats.by_shadow)
        assert not any(key[0] is Target for key in stats.batch_by_shadow)
        assert Target not in default_weaver._shadows
        # a fresh weave starts from a clean slate
        weave(Target)
        assert batched_entry(Target(), "work")(PIECES) == EXPECTED
        assert stats.batch_count(Target, "work") == 1


class TestMethodTableBatch:
    def test_invoke_batch_through_table(self):
        Target = make_target()
        weave(Target)
        calls = []

        class Price(Aspect):
            @around("call(Target.work(..))")
            def price(self, jp):
                calls.append(jp.item_count if isinstance(jp, BatchJoinPoint) else 1)
                return jp.proceed()

        deploy(Price())
        table = MethodTable(Target)
        assert table.invoke_batch(Target(), "work", PIECES) == EXPECTED
        assert calls == [3]

    def test_invoke_batch_caches_per_version_and_refreshes(self):
        Target = make_target()
        weave(Target)
        table = MethodTable(Target)
        obj = Target()
        stats = default_weaver.plan_stats
        assert table.invoke_batch(obj, "work", PIECES) == EXPECTED
        assert table.invoke_batch(obj, "work", PIECES) == EXPECTED
        # served from the version-keyed cache: one batch compile total
        assert stats.batch_count(Target, "work") == 1

        class Shift(Aspect):
            @around("call(Target.work(..))")
            def shift(self, jp):
                return [r + 100 for r in jp.proceed()]

        aspect = deploy(Shift())  # version moves -> table must refresh
        assert table.invoke_batch(obj, "work", [((1,), {})]) == [102]
        undeploy(aspect)
        assert table.invoke_batch(obj, "work", [((1,), {})]) == [2]

    def test_invoke_batch_instance_override(self):
        Target = make_target()
        weave(Target)
        obj = Target()
        obj.work = lambda x, bias=0: -x
        table = MethodTable(Target)
        assert table.invoke_batch(obj, "work", [((3,), {})]) == [-3]
