"""Middlewares: RMI, MPP, local; registry; cost charging; errors."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed, single_node
from repro.errors import MiddlewareError, RegistryError, RemoteError
from repro.middleware import (
    LocalMiddleware,
    MiddlewareCosts,
    MppMiddleware,
    RmiMiddleware,
    current_node,
    in_server_dispatch,
    use_node,
)
from repro.sim import Simulator


class Echo:
    """Simple servant used across tests."""

    def __init__(self):
        self.calls = []

    def say(self, text):
        self.calls.append(text)
        return f"echo:{text}"

    def where(self):
        return (
            current_node().name if current_node() else None,
            in_server_dispatch(),
        )

    def boom(self):
        raise ValueError("servant exploded")


def run_main(sim, fn):
    """Run fn as the client process on the cluster head node."""
    out = {}

    def main():
        out["result"] = fn()

    sim.spawn(main, name="main")
    sim.run()
    return out["result"]


class TestRmi:
    def test_roundtrip_result(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        def client():
            ref = rmi.export(Echo(), cluster.node(1))
            with use_node(cluster.head):
                result = rmi.invoke(ref, "say", ("hi",))
            rmi.shutdown()
            return result

        assert run_main(sim, client) == "echo:hi"

    def test_servant_runs_on_its_node_in_dispatch_context(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        def client():
            ref = rmi.export(Echo(), cluster.node(3))
            with use_node(cluster.head):
                where = rmi.invoke(ref, "where")
            rmi.shutdown()
            return where

        assert run_main(sim, client) == ("node3", True)

    def test_remote_exception_wrapped(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        def client():
            ref = rmi.export(Echo(), cluster.node(1))
            with use_node(cluster.head):
                try:
                    rmi.invoke(ref, "boom")
                except RemoteError as exc:
                    rmi.shutdown()
                    return type(exc.cause).__name__
            rmi.shutdown()
            return "no-error"

        assert run_main(sim, client) == "ValueError"

    def test_remote_call_costs_time_local_is_cheaper(self):
        def elapsed(dst_node_id):
            sim = Simulator()
            cluster = paper_testbed(sim)
            rmi = RmiMiddleware(cluster)

            def client():
                ref = rmi.export(Echo(), cluster.node(dst_node_id))
                with use_node(cluster.head):
                    rmi.invoke(ref, "say", ("x" * 1000,))
                t = sim.now
                rmi.shutdown()
                return t

            return run_main(sim, client)

        assert elapsed(0) < elapsed(1)
        assert elapsed(1) > 500e-6  # per-call overheads dominate

    def test_oneway_not_supported(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        def client():
            ref = rmi.export(Echo(), cluster.node(1))
            with pytest.raises(MiddlewareError):
                rmi.invoke(ref, "say", ("x",), oneway=True)
            rmi.shutdown()
            return True

        assert run_main(sim, client)

    def test_unknown_ref_rejected(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)
        mpp = MppMiddleware(cluster)

        def client():
            foreign = mpp.export(Echo(), cluster.node(1))
            with pytest.raises(MiddlewareError):
                rmi.invoke(foreign, "say", ("x",))
            rmi.shutdown()
            mpp.shutdown()
            return True

        assert run_main(sim, client)

    def test_registry_bind_lookup_unbind(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        def client():
            ref = rmi.export_and_bind("PS1", Echo(), cluster.node(2))
            assert rmi.registry.names() == ("PS1",)
            with use_node(cluster.head):
                found = rmi.lookup("PS1")
            assert found is ref
            with pytest.raises(RegistryError):
                rmi.registry.bind("PS1", ref)
            rmi.registry.unbind("PS1")
            with pytest.raises(RegistryError):
                rmi.registry.unbind("PS1")
            with pytest.raises(RegistryError):
                with use_node(cluster.head):
                    rmi.lookup("PS1")
            rmi.shutdown()
            return True

        assert run_main(sim, client)

    def test_copy_semantics_servant_gets_independent_args(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        class Holder:
            def keep(self, lst):
                self.kept = lst
                return len(lst)

        def client():
            servant = Holder()
            ref = rmi.export(servant, cluster.node(1))
            payload = [1, 2, 3]
            with use_node(cluster.head):
                rmi.invoke(ref, "keep", (payload,))
            payload.append(4)  # must not affect the servant's copy
            rmi.shutdown()
            return list(servant.kept)

        assert run_main(sim, client) == [1, 2, 3]


class TestMpp:
    def test_invoke_roundtrip(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        mpp = MppMiddleware(cluster)

        def client():
            ref = mpp.export(Echo(), cluster.node(1))
            with use_node(cluster.head):
                result = mpp.invoke(ref, "say", ("mpp",))
            mpp.shutdown()
            return result

        assert run_main(sim, client) == "echo:mpp"

    def test_oneway_returns_immediately(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        mpp = MppMiddleware(cluster)
        timeline = {}

        def client():
            servant = Echo()
            ref = mpp.export(servant, cluster.node(1))
            with use_node(cluster.head):
                mpp.invoke(ref, "say", ("fire",), oneway=True)
                timeline["after_send"] = sim.now
            sim.hold(1.0)  # let the message land
            timeline["served"] = list(servant.calls)
            mpp.shutdown()
            return True

        run_main(sim, client)
        # sender resumed long before a full RTT (client marshal only)
        assert timeline["after_send"] < 200e-6
        assert timeline["served"] == ["fire"]
        assert mpp.oneway_calls == 1

    def test_mpp_cheaper_than_rmi_same_call(self):
        def one_call(make_mw):
            sim = Simulator()
            cluster = paper_testbed(sim)
            mw = make_mw(cluster)

            def client():
                ref = mw.export(Echo(), cluster.node(1))
                with use_node(cluster.head):
                    mw.invoke(ref, "say", ("y" * 10_000,))
                t = sim.now
                mw.shutdown()
                return t

            return run_main(sim, client)

        assert one_call(MppMiddleware) < one_call(RmiMiddleware)


class TestCommWorld:
    def test_send_recv_between_ranks(self):
        from repro.middleware import CommWorld

        sim = Simulator()
        cluster = paper_testbed(sim)
        world = CommWorld(cluster, n_ranks=2)
        out = {}

        def program(comm, rank):
            if rank == 0:
                comm.send(1, {"x": 42})
            else:
                out["got"] = comm.recv(rank)

        world.spawn_all(program)
        sim.run()
        assert out["got"] == {"x": 42}

    def test_collectives(self):
        from repro.middleware import CommWorld

        sim = Simulator()
        cluster = paper_testbed(sim)
        world = CommWorld(cluster, n_ranks=4)
        gathered = {}

        def program(comm, rank):
            value = comm.bcast(0, rank, payload=10 if rank == 0 else None)
            chunk = comm.scatter(
                0, rank, chunks=[value + i for i in range(4)] if rank == 0 else None
            )
            result = comm.gather(0, rank, chunk * 2)
            comm.barrier(0, rank)
            if rank == 0:
                gathered["result"] = result

        world.spawn_all(program)
        sim.run()
        assert gathered["result"] == [20, 22, 24, 26]

    def test_rank_validation(self):
        from repro.middleware import CommWorld

        sim = Simulator()
        cluster = single_node(sim)
        with pytest.raises(MiddlewareError):
            CommWorld(cluster, n_ranks=0)
        world = CommWorld(cluster, n_ranks=2)
        with pytest.raises(MiddlewareError):
            world.node(5)


class TestLocalMiddleware:
    def test_direct_dispatch(self):
        local = LocalMiddleware()
        servant = Echo()
        ref = local.export(servant)
        assert local.invoke(ref, "say", ("direct",)) == "echo:direct"
        assert local.servant_of(ref) is servant

    def test_error_surface_is_uniform(self):
        local = LocalMiddleware()
        ref = local.export(Echo())
        with pytest.raises(RemoteError):
            local.invoke(ref, "boom")

    def test_dispatch_flag_set(self):
        local = LocalMiddleware()
        ref = local.export(Echo())
        assert local.invoke(ref, "where") == (None, True)

    def test_unknown_ref(self):
        local = LocalMiddleware()
        other = LocalMiddleware()
        ref = other.export(Echo())
        other.shutdown()
        local.shutdown()
        with pytest.raises(MiddlewareError):
            local.invoke(ref, "say", ("x",))


class TestCosts:
    def test_marshal_time_composition(self):
        costs = MiddlewareCosts(
            client_overhead=1e-3,
            server_overhead=2e-3,
            serialize_per_byte=1e-6,
            deserialize_per_byte=2e-6,
        )
        assert costs.marshal_time(1000) == pytest.approx(2e-3)
        assert costs.unmarshal_time(1000) == pytest.approx(4e-3)

    def test_measure_size_shapes(self):
        import numpy as np

        from repro.middleware import measure_size

        base = measure_size(None)
        assert measure_size(np.zeros(100, dtype=np.int64)) == base + 800
        assert measure_size(b"abc") == base + 3
        assert measure_size("abc") == base + 3
        assert measure_size([1, 2]) > base
        assert measure_size({"k": 1}) > base
