"""Plan-backed servant dispatch: the per-servant-class MethodTable."""

from __future__ import annotations

import pytest

from repro.aop import Aspect, around, deploy, undeploy, weave
from repro.aop.plan import MethodTable
from repro.aop.weaver import Weaver, default_weaver
from repro.cluster import paper_testbed
from repro.middleware.local import LocalMiddleware
from repro.middleware.mpp import MppMiddleware
from repro.middleware.rmi import RmiMiddleware
from repro.sim import Simulator


class Echo:
    def shout(self, text):
        return text.upper()

    def add(self, a, b=0):
        return a + b


class TestMethodTable:
    def test_lookup_caches_plain_functions(self):
        table = MethodTable(Echo)
        entry = table.lookup("shout")
        assert entry is Echo.shout
        assert table.lookup("shout") is entry  # cached

    def test_invoke_matches_direct_call(self):
        table = MethodTable(Echo)
        obj = Echo()
        assert table.invoke(obj, "shout", ("hi",)) == "HI"
        assert table.invoke(obj, "add", (2,), {"b": 3}) == 5

    def test_refreshes_when_weaver_version_moves(self):
        table = MethodTable(Echo)
        inert_entry = table.lookup("shout")
        weave(Echo)
        try:
            woven_entry = table.lookup("shout")
            assert woven_entry is not inert_entry
            assert woven_entry is vars(Echo)["shout"]

            class Loud(Aspect):
                @around("call(Echo.shout(..))")
                def louder(self, jp):
                    return jp.proceed() + "!"

            aspect = deploy(Loud())
            assert table.invoke(Echo(), "shout", ("hey",)) == "HEY!"
            undeploy(aspect)
            assert table.invoke(Echo(), "shout", ("hey",)) == "HEY"
        finally:
            default_weaver.unweave(Echo)

    def test_instance_attribute_overrides_class_entry(self):
        obj = Echo()
        obj.shout = lambda text: f"instance:{text}"
        table = MethodTable(Echo)
        assert table.invoke(obj, "shout", ("x",)) == "instance:x"

    def test_missing_method_raises_attribute_error(self):
        table = MethodTable(Echo)
        with pytest.raises(AttributeError):
            table.invoke(Echo(), "nope", ())

    def test_non_function_attribute_falls_back_to_getattr(self):
        class WithProperty:
            @property
            def handler(self):
                return lambda: "via-property"

        table = MethodTable(WithProperty)
        assert table.lookup("handler") is None
        assert table.invoke(WithProperty(), "handler", ()) == "via-property"

    def test_isolated_weaver_version_source(self):
        mine = Weaver()

        class Thing:
            def go(self):
                return 1

        table = MethodTable(Thing, weaver=mine)
        before = table.lookup("go")
        mine.weave(Thing)
        try:
            assert table.lookup("go") is not before
        finally:
            mine.reset()


class TestMiddlewaresRouteThroughPlans:
    def test_local_middleware_uses_table(self):
        mw = LocalMiddleware()
        ref = mw.export(Echo())
        assert mw.invoke(ref, "shout", ("hi",)) == "HI"
        _obj, table = mw._objects[ref.object_id]
        assert isinstance(table, MethodTable)

    @pytest.mark.parametrize("factory", [RmiMiddleware, MppMiddleware])
    def test_sim_middlewares_attach_tables_to_servants(self, factory):
        sim = Simulator()
        cluster = paper_testbed(sim)
        mw = factory(cluster)
        out = {}

        def client():
            ref = mw.export(Echo(), cluster.node(1))
            servant = mw._servants[ref.object_id]
            assert isinstance(servant.table, MethodTable)
            out["result"] = mw.invoke(ref, "shout", ("hello",))

        sim.spawn(client, name="main")
        sim.run()
        assert out["result"] == "HELLO"
        mw.shutdown()
