"""Serializer + name-registry unit behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import paper_testbed
from repro.errors import RegistryError
from repro.middleware import NameRegistry, Serializer, measure_size, use_node
from repro.middleware.base import RemoteRef
from repro.sim import Simulator


class TestSerializer:
    def test_pack_copy_mode_isolates_numpy(self):
        serializer = Serializer(copy=True)
        original = np.arange(10)
        wire, size = serializer.pack(original)
        assert size == measure_size(original)
        original[0] = 99
        assert wire[0] == 0

    def test_pack_reference_mode_shares(self):
        serializer = Serializer(copy=False)
        payload = [1, 2, 3]
        wire, _ = serializer.pack(payload)
        assert wire is payload

    def test_accounting_accumulates(self):
        serializer = Serializer()
        serializer.pack(b"x" * 100)
        serializer.pack(b"y" * 50)
        assert serializer.messages == 2
        assert serializer.bytes_out == measure_size(b"x" * 100) + measure_size(
            b"y" * 50
        )

    def test_clone_nested_structures(self):
        serializer = Serializer()
        payload = {"a": [np.arange(3), (1, "two")], "b": {"c": None}}
        clone = serializer.clone(payload)
        assert clone["b"] == {"c": None}
        assert np.array_equal(clone["a"][0], payload["a"][0])
        clone["a"][0][0] = 42
        assert payload["a"][0][0] == 0

    def test_clone_custom_object_deep(self):
        class Box:
            def __init__(self):
                self.items = [1, 2]

        serializer = Serializer()
        box = Box()
        clone = serializer.clone(box)
        clone.items.append(3)
        assert box.items == [1, 2]

    def test_measure_size_numpy_exact(self):
        base = measure_size(None)
        assert measure_size(np.zeros((10, 10))) == base + 800

    def test_measure_size_mixed_containers(self):
        assert measure_size({"key": [1.0, 2.0]}) > measure_size({})

    def test_measure_size_negative_impossible(self):
        assert measure_size("") >= 0


class TestNameRegistry:
    def make(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        return sim, cluster, NameRegistry(cluster)

    def ref(self):
        return RemoteRef(1, "test", "Thing")

    def test_bind_conflicts_and_rebind(self):
        _, _, registry = self.make()
        first = self.ref()
        registry.bind("a", first)
        with pytest.raises(RegistryError):
            registry.bind("a", self.ref())
        replacement = self.ref()
        registry.rebind("a", replacement)
        assert registry._bindings["a"] is replacement

    def test_names_sorted(self):
        _, _, registry = self.make()
        registry.bind("zeta", self.ref())
        registry.bind("alpha", self.ref())
        assert registry.names() == ("alpha", "zeta")

    def test_lookup_outside_simulation_is_free(self):
        # no current node -> no charging, still resolves
        _, _, registry = self.make()
        ref = self.ref()
        registry.bind("x", ref)
        assert registry.lookup("x") is ref
        assert registry.lookups == 1

    def test_lookup_charges_roundtrip_inside_simulation(self):
        sim, cluster, registry = self.make()
        ref = self.ref()
        registry.bind("x", ref)
        observed = {}

        def main():
            with use_node(cluster.node(3)):  # registry lives on head (0)
                start = sim.now
                registry.lookup("x")
                observed["cost"] = sim.now - start

        sim.spawn(main)
        sim.run()
        assert observed["cost"] > 0

    def test_lookup_from_registry_node_is_loopback_cheap(self):
        sim, cluster, registry = self.make()
        registry.bind("x", self.ref())
        observed = {}

        def main():
            with use_node(cluster.head):
                start = sim.now
                registry.lookup("x")
                observed["cost"] = sim.now - start

        sim.spawn(main)
        sim.run()
        assert observed["cost"] < 10e-6
