"""Batched middleware requests: one message per pack, served through the
servant's MethodTable batch plan."""

from __future__ import annotations

import pytest

from repro.aop import Aspect, BatchJoinPoint, around, deploy, weave
from repro.cluster import paper_testbed
from repro.errors import MiddlewareError, RemoteError
from repro.middleware import LocalMiddleware, RmiMiddleware, use_node
from repro.sim import Simulator


class Calc:
    def __init__(self):
        self.calls = 0

    def add(self, a, b=0):
        self.calls += 1
        return a + b

    def boom(self, x):
        raise ValueError(f"bad:{x}")


PIECES = [((1,), {}), ((2,), {"b": 5}), ((3,), {})]
EXPECTED = [1, 7, 3]


def run_main(sim, fn):
    out = {}

    def main():
        out["result"] = fn()

    sim.spawn(main, name="main")
    sim.run()
    return out["result"]


class TestLocalBatched:
    def test_batch_roundtrip(self):
        local = LocalMiddleware()
        servant = Calc()
        ref = local.export(servant)
        assert local.invoke_batch(ref, "add", PIECES) == EXPECTED
        assert servant.calls == 3

    def test_batch_runs_servant_advice_once_per_pack(self):
        weave(Calc)
        seen = []

        class Observe(Aspect):
            applies_server_side = True

            @around("call(Calc.add(..))")
            def observe(self, jp):
                seen.append(
                    jp.item_count if isinstance(jp, BatchJoinPoint) else 1
                )
                return jp.proceed()

        deploy(Observe())
        local = LocalMiddleware()
        ref = local.export(Calc())
        assert local.invoke_batch(ref, "add", PIECES) == EXPECTED
        assert seen == [3]

    def test_unknown_ref(self):
        local = LocalMiddleware()
        ref = local.export(Calc())
        local.shutdown()
        with pytest.raises(MiddlewareError):
            local.invoke_batch(ref, "add", PIECES)

    def test_batch_error_wrapped(self):
        local = LocalMiddleware()
        ref = local.export(Calc())
        with pytest.raises(RemoteError):
            local.invoke_batch(ref, "boom", [((1,), {})])


class TestSimBatched:
    def test_rmi_batch_is_one_message_pair(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)
        servant = Calc()

        def client():
            ref = rmi.export(servant, cluster.node(1))
            before = cluster.network.remote_messages
            with use_node(cluster.head):
                result = rmi.invoke_batch(ref, "add", PIECES)
            messages = cluster.network.remote_messages - before
            rmi.shutdown()
            return result, messages

        result, messages = run_main(sim, client)
        assert result == EXPECTED
        assert servant.calls == 3
        # request + reply: the pack crossed the wire exactly once each way
        assert messages == 2
        assert rmi.batched_calls == 1

    def test_rmi_batch_error_wrapped(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)

        def client():
            ref = rmi.export(Calc(), cluster.node(1))
            with use_node(cluster.head):
                try:
                    rmi.invoke_batch(ref, "boom", [((7,), {})])
                except RemoteError as exc:
                    return str(exc)
                finally:
                    rmi.shutdown()
            return None

        message = run_main(sim, client)
        assert message is not None and "bad:7" in message
