"""Property-style round-trips for the process wire format.

The envelopes in :mod:`repro.middleware.serialize` are the only things
that cross the process boundary, so their encode/decode must be exact
(``context_id`` included), exceptions must arrive as payloads with their
remote traceback attached, and an unpicklable argument must fail at the
*send site* with a :class:`~repro.errors.SerializationError` naming the
culprit field — never a hang on a reply that cannot exist.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.errors import SerializationError
from repro.middleware.serialize import (
    ExportEnvelope,
    ReplyEnvelope,
    RequestEnvelope,
    Serializer,
    decode_envelope,
    dumps,
    encode_envelope,
    exception_payload,
    loads,
)

# a spread of payload shapes: scalars, containers, nesting, unicode,
# bytes, empties — the "property-style" axis of the round-trip
PAYLOADS = [
    None,
    0,
    -17,
    3.25,
    True,
    "plain",
    "unicode ✓ \N{SNOWMAN}",
    b"\x00\xff bytes",
    (),
    [],
    {},
    [1, [2, [3, [4]]]],
    {"k": (1, 2.5, "v"), "nested": {"deep": [None, False]}},
    tuple(range(50)),
    {i: str(i) for i in range(20)},
]


class Custom:
    """A plain user type that must survive the wire by value."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Custom) and other.value == self.value


class TestDumpLoad:
    @pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
    def test_round_trip_identity(self, payload):
        assert loads(dumps(payload)) == payload

    def test_custom_objects_round_trip_by_value(self):
        original = Custom([1, 2, 3])
        clone = loads(dumps(original))
        assert clone == original
        assert clone is not original

    def test_unpicklable_payload_raises_targeted_error(self):
        with pytest.raises(SerializationError, match="cannot pickle"):
            dumps(threading.Lock())


class TestRequestEnvelope:
    @pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
    def test_args_round_trip(self, payload):
        envelope = RequestEnvelope(
            7, 3, "work", (payload,), {"key": payload}, context_id=42
        )
        back = decode_envelope(encode_envelope(envelope))
        assert back.call_id == 7
        assert back.object_id == 3
        assert back.method == "work"
        assert back.args == (payload,)
        assert back.kwargs == {"key": payload}
        assert back.context_id == 42
        assert back.oneway is False
        assert back.batch is False

    def test_flags_and_absent_context_survive(self):
        envelope = RequestEnvelope(
            1, 2, "fire", ((1,), (2,)), None, oneway=True, batch=True
        )
        back = decode_envelope(encode_envelope(envelope))
        assert back.oneway is True
        assert back.batch is True
        assert back.context_id is None
        assert back.kwargs is None

    def test_unpicklable_argument_names_the_culprit_field(self):
        envelope = RequestEnvelope(1, 2, "work", (threading.Lock(),), {})
        with pytest.raises(SerializationError) as err:
            encode_envelope(envelope)
        message = str(err.value)
        assert "RequestEnvelope.args" in message
        assert "cannot cross the process boundary" in message

    def test_unpicklable_kwarg_names_the_culprit_field(self):
        envelope = RequestEnvelope(
            1, 2, "work", (), {"handle": threading.Condition()}
        )
        with pytest.raises(
            SerializationError, match="RequestEnvelope.kwargs"
        ):
            encode_envelope(envelope)


class TestReplyEnvelope:
    @pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
    def test_ok_reply_round_trip(self, payload):
        back = decode_envelope(
            encode_envelope(ReplyEnvelope(9, "ok", payload, context_id=5))
        )
        assert (back.call_id, back.outcome, back.context_id) == (9, "ok", 5)
        assert back.payload == payload

    def test_exception_travels_as_error_payload(self):
        try:
            raise ValueError("boom at depth")
        except ValueError as exc:
            payload = exception_payload(exc)
        back = decode_envelope(
            encode_envelope(ReplyEnvelope(3, "error", payload))
        )
        assert isinstance(back.payload, ValueError)
        assert "boom at depth" in str(back.payload)
        # the rendered remote traceback crossed the boundary as text
        assert "ValueError: boom at depth" in back.payload.remote_traceback
        assert "raise ValueError" in back.payload.remote_traceback

    def test_unpicklable_exception_degrades_not_lost(self):
        class Sneaky(Exception):
            def __init__(self):
                super().__init__("sneaky")
                self.lock = threading.Lock()  # refuses to pickle

        try:
            raise Sneaky()
        except Sneaky as exc:
            payload = exception_payload(exc)
        # degraded to a SerializationError that still tells the story
        assert isinstance(payload, SerializationError)
        assert "Sneaky" in str(payload)
        assert "sneaky" in str(payload)
        assert "Sneaky" in payload.remote_traceback
        # and the degraded payload itself crosses the boundary fine
        back = decode_envelope(
            encode_envelope(ReplyEnvelope(4, "error", payload))
        )
        assert isinstance(back.payload, SerializationError)


class TestExportEnvelope:
    def test_servant_ships_by_value(self):
        servant = Custom({"state": [1, 2]})
        back = decode_envelope(
            encode_envelope(ExportEnvelope(11, servant, "Custom"))
        )
        assert back.object_id == 11
        assert back.type_name == "Custom"
        assert back.servant == servant
        assert back.servant is not servant

    def test_unpicklable_servant_names_the_field(self):
        bad = Custom(threading.Lock())
        with pytest.raises(
            SerializationError, match="ExportEnvelope.servant"
        ):
            encode_envelope(ExportEnvelope(1, bad))


class TestSerializerAccounting:
    def test_encode_counts_messages_and_bytes(self):
        serializer = Serializer()
        before = (serializer.messages, serializer.bytes_out)
        data = serializer.encode(RequestEnvelope(1, 1, "m", (1,), {}))
        assert serializer.messages == before[0] + 1
        assert serializer.bytes_out > before[1]
        # decode charges nothing: accounting bills the sender once
        serializer.decode(data)
        assert serializer.messages == before[0] + 1

    def test_corrupt_frame_raises_serialization_error(self):
        with pytest.raises(SerializationError, match="cannot unpickle"):
            loads(b"definitely not a pickle")

    def test_protocol_is_binary_stable(self):
        # frames produced here must be consumable by a forked child
        # running the same interpreter: plain pickle bytes, no wrapper
        frame = encode_envelope(ReplyEnvelope(1, "ok", [1, 2]))
        assert pickle.loads(frame).payload == [1, 2]
