"""Cluster model: nodes, network delays, topology presets, metrics."""

from __future__ import annotations

import pytest

from repro.cluster import (
    GIGABIT_ETHERNET,
    Cluster,
    Network,
    Node,
    format_report,
    paper_testbed,
    single_node,
    snapshot,
)
from repro.errors import ClusterError
from repro.sim import Simulator


class TestNode:
    def test_node_identity_and_cpu(self):
        sim = Simulator()
        node = Node(sim, 3, cores=2, ht_factor=1.3)
        assert node.name == "node3"
        assert node.cores == 2
        assert node.cpu.ht_factor == 1.3

    def test_negative_id_rejected(self):
        with pytest.raises(ClusterError):
            Node(Simulator(), -1)

    def test_place_records_objects(self):
        node = Node(Simulator(), 0)
        marker = object()
        node.place(marker)
        assert marker in node.resident_objects

    def test_execute_charges_cpu(self):
        sim = Simulator()
        node = Node(sim, 0, cores=1)
        done = []
        sim.spawn(lambda: (node.execute(2.0), done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(2.0)]


class TestNetwork:
    def test_remote_delay_latency_plus_bandwidth(self):
        net = Network(latency=100e-6, bandwidth=1e6)
        delay = net.transit_delay(1000, 0, 1)
        assert delay == pytest.approx(100e-6 + 1000 / 1e6)

    def test_loopback_delay(self):
        net = Network(latency=100e-6, bandwidth=1e6, loopback_latency=1e-6)
        assert net.transit_delay(10**6, 0, 0) == pytest.approx(1e-6)
        assert net.transit_delay(10**6, None, 1) == pytest.approx(1e-6)

    def test_counters(self):
        net = Network()
        net.transit_delay(100, 0, 1)
        net.transit_delay(50, 0, 0)
        assert net.messages == 2
        assert net.remote_messages == 1
        assert net.bytes == 150
        net.reset_counters()
        assert net.messages == 0

    def test_invalid_parameters(self):
        with pytest.raises(ClusterError):
            Network(latency=-1)
        with pytest.raises(ClusterError):
            Network(bandwidth=0)
        with pytest.raises(ClusterError):
            Network().transit_delay(-1, 0, 1)

    def test_gigabit_preset(self):
        net = GIGABIT_ETHERNET()
        assert net.latency == pytest.approx(80e-6)
        assert net.bandwidth == pytest.approx(125e6)


class TestCluster:
    def test_paper_testbed_shape(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        assert len(cluster) == 7
        assert cluster.total_physical_cores() == 14
        assert all(n.cpu.ht_factor == 1.3 for n in cluster)
        assert cluster.head.node_id == 0

    def test_single_node(self):
        cluster = single_node(Simulator())
        assert len(cluster) == 1

    def test_node_lookup(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        assert cluster.node(4).node_id == 4
        with pytest.raises(ClusterError):
            cluster.node(99)

    def test_duplicate_ids_rejected(self):
        sim = Simulator()
        nodes = [Node(sim, 0), Node(sim, 0)]
        with pytest.raises(ClusterError):
            Cluster(sim, nodes, GIGABIT_ETHERNET())

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            Cluster(Simulator(), [], GIGABIT_ETHERNET())

    def test_transit_delay_via_nodes(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        d_remote = cluster.transit_delay(1000, cluster.node(0), cluster.node(1))
        d_local = cluster.transit_delay(1000, cluster.node(0), cluster.node(0))
        assert d_remote > d_local


class TestMetrics:
    def test_snapshot_and_format(self):
        sim = Simulator()
        cluster = paper_testbed(sim)

        def work():
            cluster.node(0).execute(1.0)

        sim.spawn(work)
        sim.run()
        cluster.network.transit_delay(500, 0, 1)
        snap = snapshot(cluster)
        assert snap["sim_time"] == pytest.approx(1.0)
        assert snap["network"]["messages"] == 1
        assert snap["nodes"][0]["jobs_completed"] == 1
        report = format_report(snap)
        assert "node0" in report
        assert "messages=1" in report
