"""Channels (delayed delivery) and the processor-sharing CPU model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, ProcessorSharingCPU, Simulator, total_rate


class TestChannel:
    def test_send_recv_with_delay(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def receiver():
            msg = ch.recv()
            got.append((msg.payload, sim.now, msg.transit_time))

        def sender():
            sim.hold(1.0)
            ch.send("hello", delay=0.25, size_bytes=100, tag="greeting")

        sim.spawn(receiver)
        sim.spawn(sender)
        sim.run()
        assert got == [("hello", 1.25, 0.25)]
        assert ch.sent_count == 1
        assert ch.sent_bytes == 100

    def test_zero_delay_delivery_same_time(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def receiver():
            got.append((ch.recv().payload, sim.now))

        sim.spawn(receiver)
        sim.spawn(lambda: ch.send("now"))
        sim.run()
        assert got == [("now", 0.0)]

    def test_messages_arrive_in_arrival_time_order(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def receiver():
            for _ in range(2):
                got.append(ch.recv().payload)

        def sender():
            ch.send("slow", delay=5.0)
            ch.send("fast", delay=1.0)

        sim.spawn(receiver)
        sim.spawn(sender)
        sim.run()
        assert got == ["fast", "slow"]

    def test_try_recv_and_pending(self):
        sim = Simulator()
        ch = Channel(sim)
        out = []

        def proc():
            out.append(ch.try_recv())
            ch.send("x")
            sim.hold(0.0)
            out.append(ch.pending)
            msg = ch.try_recv()
            out.append(msg.payload)

        sim.spawn(proc)
        sim.run()
        assert out == [None, 1, "x"]


class TestTotalRate:
    """The HT throughput curve documented in resources.py."""

    def test_subscription_below_cores_is_linear(self):
        assert total_rate(1, 2, 1.3) == 1.0
        assert total_rate(2, 2, 1.3) == 2.0

    def test_ht_ramp_and_saturation(self):
        assert total_rate(3, 2, 1.3) == pytest.approx(2.3)
        assert total_rate(4, 2, 1.3) == pytest.approx(2.6)
        assert total_rate(5, 2, 1.3) == pytest.approx(2.6)
        assert total_rate(16, 2, 1.3) == pytest.approx(2.6)

    def test_no_ht_saturates_at_cores(self):
        assert total_rate(4, 2, 1.0) == pytest.approx(2.0)

    def test_zero_jobs(self):
        assert total_rate(0, 2, 1.3) == 0.0


class TestProcessorSharingCPU:
    def test_single_job_runs_at_full_speed(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=2)
        done = []

        def job():
            cpu.execute(3.0)
            done.append(sim.now)

        sim.spawn(job)
        sim.run()
        assert done == [pytest.approx(3.0)]

    def test_two_jobs_on_two_cores_run_in_parallel(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=2)
        done = []

        for _ in range(2):
            sim.spawn(lambda: (cpu.execute(3.0), done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(3.0), pytest.approx(3.0)]

    def test_four_jobs_share_with_ht_bonus(self):
        # 4 jobs, 2 cores, ht=1.3 -> total rate 2.6; 4*3.0 work units
        # finish together at 12/2.6
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=2, ht_factor=1.3)
        done = []
        for _ in range(4):
            sim.spawn(lambda: (cpu.execute(3.0), done.append(sim.now)))
        sim.run()
        expected = 4 * 3.0 / 2.6
        assert done == [pytest.approx(expected)] * 4

    def test_speed_scales_execution(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=1, speed=2.0)
        done = []
        sim.spawn(lambda: (cpu.execute(3.0), done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_staggered_arrivals_ps_math(self):
        # Job A (work 2) starts at 0 on 1 core; job B (work 1) arrives at 1.
        # A runs alone [0,1] completing 1 unit. Then PS at rate 1/2 each.
        # A needs 1 more -> 2 shared seconds -> done at 3.
        # B needs 1 -> done at 3 as well.
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=1, ht_factor=1.0)
        done = {}

        def job(name, work, delay):
            sim.hold(delay)
            cpu.execute(work)
            done[name] = sim.now

        sim.spawn(lambda: job("a", 2.0, 0.0))
        sim.spawn(lambda: job("b", 1.0, 1.0))
        sim.run()
        assert done["a"] == pytest.approx(3.0)
        assert done["b"] == pytest.approx(3.0)

    def test_zero_work_returns_instantly(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=1)
        done = []
        sim.spawn(lambda: (cpu.execute(0.0), done.append(sim.now)))
        sim.run()
        assert done == [0.0]

    def test_execute_outside_process_rejected(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=1)
        with pytest.raises(SimulationError):
            cpu.execute(1.0)

    def test_utilisation_accounting(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=2)
        sim.spawn(lambda: cpu.execute(4.0))
        sim.run()
        # one job on a 2-core complex: busy 4s of 8 core-seconds
        assert cpu.utilisation() == pytest.approx(0.5)
        assert cpu.jobs_completed == 1

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            ProcessorSharingCPU(sim, cores=0)
        with pytest.raises(SimulationError):
            ProcessorSharingCPU(sim, cores=1, ht_factor=0.5)
        with pytest.raises(SimulationError):
            ProcessorSharingCPU(sim, cores=1, speed=0)

    def test_many_jobs_complete_and_accounting_consistent(self):
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=2, ht_factor=1.3)
        done = []

        def job(wid):
            sim.hold(wid * 0.1)
            cpu.execute(1.0 + 0.01 * wid)
            done.append(wid)

        for wid in range(10):
            sim.spawn(lambda wid=wid: job(wid))
        sim.run()
        assert sorted(done) == list(range(10))
        assert cpu.jobs_completed == 10
        assert cpu.active_jobs == 0
