"""Synchronisation primitives: events, locks, semaphores, barriers, queues."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import SimBarrier, SimEvent, SimLock, SimQueue, SimSemaphore, Simulator


class TestSimEvent:
    def test_wait_blocks_until_set(self):
        sim = Simulator()
        log = []
        evt = SimEvent(sim)

        def waiter():
            evt.wait()
            log.append(("woke", sim.now))

        def setter():
            sim.hold(4.0)
            evt.set("payload")

        sim.spawn(waiter)
        sim.spawn(setter)
        sim.run()
        assert log == [("woke", 4.0)]
        assert evt.value == "payload"

    def test_wait_on_set_event_returns_immediately(self):
        sim = Simulator()
        log = []
        evt = SimEvent(sim)
        evt.set()

        def waiter():
            assert evt.wait() is True
            log.append(sim.now)

        sim.spawn(waiter)
        sim.run()
        assert log == [0.0]

    def test_set_wakes_all_waiters(self):
        sim = Simulator()
        woke = []
        evt = SimEvent(sim)
        for i in range(3):
            sim.spawn(lambda i=i: (evt.wait(), woke.append(i)))
        sim.spawn(lambda: (sim.hold(1.0), evt.set()))
        sim.run()
        assert sorted(woke) == [0, 1, 2]

    def test_double_set_is_idempotent(self):
        sim = Simulator()
        evt = SimEvent(sim)
        evt.set(1)
        evt.set(2)
        assert evt.value == 1

    def test_wait_timeout_returns_false(self):
        sim = Simulator()
        results = []
        evt = SimEvent(sim)

        def waiter():
            results.append(evt.wait(timeout=2.0))
            results.append(sim.now)

        sim.spawn(waiter)
        sim.run()
        assert results == [False, 2.0]

    def test_timeout_does_not_fire_after_normal_wake(self):
        sim = Simulator()
        results = []
        evt = SimEvent(sim)

        def waiter():
            results.append(evt.wait(timeout=10.0))
            sim.hold(20.0)  # survive past the stale timeout
            results.append("alive")

        sim.spawn(waiter)
        sim.spawn(lambda: (sim.hold(1.0), evt.set()))
        sim.run()
        assert results == [True, "alive"]

    def test_clear_allows_reuse(self):
        sim = Simulator()
        evt = SimEvent(sim)
        evt.set("x")
        evt.clear()
        assert not evt.is_set
        assert evt.value is None


class TestSimLock:
    def test_mutual_exclusion_and_fifo_order(self):
        sim = Simulator()
        lock = SimLock(sim)
        log = []

        def worker(wid):
            with lock:
                log.append(("enter", wid, sim.now))
                sim.hold(1.0)
                log.append(("exit", wid, sim.now))

        for wid in range(3):
            sim.spawn(lambda wid=wid: worker(wid))
        sim.run()
        # strictly serialized, FIFO
        assert log == [
            ("enter", 0, 0.0),
            ("exit", 0, 1.0),
            ("enter", 1, 1.0),
            ("exit", 1, 2.0),
            ("enter", 2, 2.0),
            ("exit", 2, 3.0),
        ]
        assert lock.contended == 2

    def test_not_reentrant(self):
        sim = Simulator()
        lock = SimLock(sim)
        caught = []

        def proc():
            lock.acquire()
            try:
                lock.acquire()
            except SimulationError:
                caught.append("yes")
            lock.release()

        sim.spawn(proc)
        sim.run()
        assert caught == ["yes"]

    def test_release_by_non_owner_rejected(self):
        sim = Simulator()
        lock = SimLock(sim)
        caught = []

        def owner():
            lock.acquire()
            sim.hold(2.0)
            lock.release()

        def thief():
            sim.hold(1.0)
            try:
                lock.release()
            except SimulationError:
                caught.append("rejected")

        sim.spawn(owner)
        sim.spawn(thief)
        sim.run()
        assert caught == ["rejected"]


class TestSimSemaphore:
    def test_counting_limits_concurrency(self):
        sim = Simulator()
        sem = SimSemaphore(sim, value=2)
        active = [0]
        peak = [0]

        def worker():
            with sem:
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                sim.hold(1.0)
                active[0] -= 1

        for _ in range(5):
            sim.spawn(worker)
        sim.run()
        assert peak[0] == 2

    def test_negative_initial_value_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimSemaphore(sim, value=-1)

    def test_release_without_waiters_increments(self):
        sim = Simulator()
        sem = SimSemaphore(sim, value=0)
        sem.release()
        assert sem.value == 1


class TestSimBarrier:
    def test_barrier_releases_all_at_last_arrival(self):
        sim = Simulator()
        barrier = SimBarrier(sim, parties=3)
        log = []

        def worker(wid, delay):
            sim.hold(delay)
            barrier.wait()
            log.append((wid, sim.now))

        sim.spawn(lambda: worker(0, 1.0))
        sim.spawn(lambda: worker(1, 5.0))
        sim.spawn(lambda: worker(2, 3.0))
        sim.run()
        assert sorted(log) == [(0, 5.0), (1, 5.0), (2, 5.0)]
        assert barrier.generation == 1

    def test_barrier_is_cyclic(self):
        sim = Simulator()
        barrier = SimBarrier(sim, parties=2)
        rounds = []

        def worker(wid):
            for r in range(3):
                sim.hold(wid + 1.0)
                barrier.wait()
                rounds.append((r, wid))

        sim.spawn(lambda: worker(0))
        sim.spawn(lambda: worker(1))
        sim.run()
        assert barrier.generation == 3
        assert len(rounds) == 6

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(Simulator(), parties=0)


class TestSimQueue:
    def test_put_get_fifo(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def producer():
            for i in range(3):
                sim.hold(1.0)
                q.put(i)

        def consumer():
            for _ in range(3):
                got.append((q.get(), sim.now))

        sim.spawn(consumer)
        sim.spawn(producer)
        sim.run()
        assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_get_timeout_raises(self):
        sim = Simulator()
        q = SimQueue(sim)
        caught = []

        def consumer():
            try:
                q.get(timeout=2.5)
            except TimeoutError:
                caught.append(sim.now)

        sim.spawn(consumer)
        sim.run()
        assert caught == [2.5]

    def test_try_get(self):
        sim = Simulator()
        q = SimQueue(sim)
        out = []

        def proc():
            out.append(q.try_get())
            q.put("x")
            out.append(q.try_get())

        sim.spawn(proc)
        sim.run()
        assert out == [(False, None), (True, "x")]

    def test_multiple_consumers_each_item_consumed_once(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def consumer(cid):
            got.append((cid, q.get()))

        sim.spawn(lambda: consumer(0))
        sim.spawn(lambda: consumer(1))

        def producer():
            sim.hold(1.0)
            q.put("a")
            sim.hold(1.0)
            q.put("b")

        sim.spawn(producer)
        sim.run()
        assert sorted(item for _, item in got) == ["a", "b"]
        assert sorted(cid for cid, _ in got) == [0, 1]
