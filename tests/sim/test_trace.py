"""Trace/counter utilities."""

from __future__ import annotations

from repro.sim import Trace


class TestTrace:
    def test_emit_and_counters(self):
        trace = Trace()
        trace.emit(0.0, "send", "pack0", size=100)
        trace.emit(1.5, "send", "pack1", size=200)
        trace.emit(2.0, "recv", "pack0")
        assert len(trace) == 3
        assert trace.count("send") == 2
        assert trace.count("recv") == 1
        assert trace.count("missing") == 0

    def test_category_and_window_filters(self):
        trace = Trace()
        for t in range(5):
            trace.emit(float(t), "tick", f"t{t}")
        assert [e.label for e in trace.of("tick")] == [f"t{t}" for t in range(5)]
        window = trace.between(1.0, 3.0)
        assert [e.time for e in window] == [1.0, 2.0, 3.0]

    def test_capacity_caps_events_not_counters(self):
        trace = Trace(capacity=2)
        for t in range(5):
            trace.emit(float(t), "tick", f"t{t}")
        assert len(trace) == 2
        assert trace.count("tick") == 5

    def test_format_renders_data(self):
        trace = Trace()
        trace.emit(0.25, "net", "hop", src=0, dst=1)
        text = trace.format()
        assert "net" in text and "hop" in text and "src=0" in text
