"""Simulation kernel: clock, scheduling, determinism, failure modes."""

from __future__ import annotations

import pytest

from repro.errors import SimDeadlockError, SimTimeError, SimulationError
from repro.sim import SimEvent, Simulator, current_process, current_simulator


class TestClockAndHold:
    def test_time_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_hold_advances_time(self):
        sim = Simulator()
        seen = []

        def proc():
            sim.hold(1.5)
            seen.append(sim.now)
            sim.hold(0.5)
            seen.append(sim.now)

        sim.spawn(proc)
        end = sim.run()
        assert seen == [1.5, 2.0]
        assert end == 2.0

    def test_hold_zero_is_allowed(self):
        sim = Simulator()

        def proc():
            sim.hold(0.0)

        sim.spawn(proc)
        assert sim.run() == 0.0

    def test_negative_hold_rejected(self):
        sim = Simulator()
        errors = []

        def proc():
            try:
                sim.hold(-1)
            except SimTimeError:
                errors.append("caught")

        sim.spawn(proc)
        sim.run()
        assert errors == ["caught"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []

        def proc():
            for _ in range(10):
                sim.hold(1.0)
                seen.append(sim.now)

        sim.spawn(proc)
        end = sim.run(until=3.0)
        assert end == 3.0
        assert seen == [1.0, 2.0, 3.0]
        sim.shutdown()


class TestSpawnAndJoin:
    def test_spawn_with_delay(self):
        sim = Simulator()
        seen = []
        sim.spawn(lambda: seen.append(("a", sim.now)), delay=2.0)
        sim.spawn(lambda: seen.append(("b", sim.now)), delay=1.0)
        sim.run()
        assert seen == [("b", 1.0), ("a", 2.0)]

    def test_join_returns_result(self):
        sim = Simulator()
        out = []

        def child():
            sim.hold(3.0)
            return 42

        def parent():
            handle = sim.spawn(child)
            out.append(handle.join())
            out.append(sim.now)

        sim.spawn(parent)
        sim.run()
        assert out == [42, 3.0]

    def test_join_finished_process_returns_immediately(self):
        sim = Simulator()
        out = []

        def child():
            return "done"

        def parent():
            handle = sim.spawn(child)
            sim.hold(5.0)
            out.append(handle.join())

        sim.spawn(parent)
        sim.run()
        assert out == ["done"]

    def test_join_propagates_child_exception(self):
        sim = Simulator()

        def child():
            raise ValueError("child failed")

        def parent():
            handle = sim.spawn(child)
            handle.join()

        sim.spawn(parent)
        with pytest.raises(ValueError, match="child failed"):
            sim.run()
        sim.shutdown()

    def test_join_outside_process_rejected(self):
        sim = Simulator()
        handle = sim.spawn(lambda: None)
        with pytest.raises(SimulationError):
            handle.join()
        sim.run()

    def test_self_join_rejected(self):
        sim = Simulator()
        failures = []

        def proc():
            me = current_process()
            try:
                me.join()
            except SimulationError:
                failures.append("rejected")

        sim.spawn(proc)
        sim.run()
        assert failures == ["rejected"]

    def test_current_simulator_inside_process(self):
        sim = Simulator()
        seen = []
        sim.spawn(lambda: seen.append(current_simulator() is sim))
        sim.run()
        assert seen == [True]
        assert current_simulator() is None


class TestDeterminism:
    def test_fifo_tie_break_at_same_time(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.spawn(lambda i=i: order.append(i), delay=1.0)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_repeated_runs_identical(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def worker(wid, period):
                for _ in range(4):
                    sim.hold(period)
                    log.append((round(sim.now, 6), wid))

            for wid, period in [(0, 0.3), (1, 0.7), (2, 0.5)]:
                sim.spawn(lambda wid=wid, period=period: worker(wid, period))
            sim.run()
            return log

        assert build_and_run() == build_and_run()


class TestFailureModes:
    def test_process_exception_aborts_run(self):
        sim = Simulator()

        def bad():
            sim.hold(1.0)
            raise RuntimeError("boom")

        sim.spawn(bad)
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        sim.shutdown()

    def test_deadlock_detected_and_named(self):
        sim = Simulator()

        def stuck():
            evt = SimEvent(sim, name="never")
            evt.wait()

        sim.spawn(stuck, name="victim")
        with pytest.raises(SimDeadlockError, match="victim"):
            sim.run()
        sim.shutdown()

    def test_hold_outside_process_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.hold(1.0)

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        failures = []

        def proc():
            try:
                sim.run()
            except SimulationError:
                failures.append("rejected")

        sim.spawn(proc)
        sim.run()
        assert failures == ["rejected"]

    def test_shutdown_kills_blocked_processes(self):
        sim = Simulator()

        def stuck():
            SimEvent(sim, name="never").wait()

        proc = sim.spawn(stuck)
        with pytest.raises(SimDeadlockError):
            sim.run()
        sim.shutdown()
        assert proc.finished

    def test_context_manager_shuts_down(self):
        with Simulator() as sim:
            proc = sim.spawn(lambda: SimEvent(sim, name="never").wait())
            with pytest.raises(SimDeadlockError):
                sim.run()
        assert proc.finished


class TestTimers:
    def test_call_later_runs_in_kernel_context(self):
        sim = Simulator()
        fired = []
        sim.call_later(2.0, lambda: fired.append(sim.now))
        sim.spawn(lambda: sim.hold(5.0))
        sim.run()
        assert fired == [2.0]

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.spawn(lambda: sim.hold(1.0))
        sim.run()
        with pytest.raises(SimTimeError):
            sim.call_at(0.5, lambda: None)

    def test_finished_hook_invoked(self):
        sim = Simulator()
        finished = []
        sim.add_finished_hook(lambda p: finished.append(p.name))
        sim.spawn(lambda: None, name="alpha")
        sim.run()
        assert finished == ["alpha"]
