"""CommWorld edge cases: tag stashing, custom rank placement, join."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.errors import MiddlewareError
from repro.middleware import CommWorld
from repro.sim import Simulator


class TestTagMatching:
    def test_out_of_order_tags_are_stashed(self):
        sim = Simulator()
        world = CommWorld(paper_testbed(sim), n_ranks=2)
        out = {}

        def program(comm, rank):
            if rank == 0:
                comm.send(1, "first", tag="a")
                comm.send(1, "second", tag="b")
            else:
                # receive in reverse tag order: 'b' must be matched even
                # though 'a' arrives first
                out["b"] = comm.recv(rank, tag="b")
                out["a"] = comm.recv(rank, tag="a")

        world.spawn_all(program)
        sim.run()
        assert out == {"a": "first", "b": "second"}

    def test_untagged_recv_takes_stash_first(self):
        sim = Simulator()
        world = CommWorld(paper_testbed(sim), n_ranks=2)
        out = {}

        def program(comm, rank):
            if rank == 0:
                comm.send(1, "x", tag="odd")
                comm.send(1, "y", tag="wanted")
            else:
                out["wanted"] = comm.recv(rank, tag="wanted")  # stashes "x"
                out["any"] = comm.recv(rank)  # drains the stash
        world.spawn_all(program)
        sim.run()
        assert out == {"wanted": "y", "any": "x"}


class TestTopology:
    def test_custom_rank_to_node_mapping(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        world = CommWorld(cluster, n_ranks=3, node_of_rank=lambda r: 6 - r)
        assert world.node(0).node_id == 6
        assert world.node(2).node_id == 4

    def test_join_all_returns_rank_results(self):
        sim = Simulator()
        world = CommWorld(paper_testbed(sim), n_ranks=3)
        world.spawn_all(lambda comm, rank: rank * 10)
        sim.run()
        assert world.join_all() == [0, 10, 20]

    def test_spawn_invalid_rank(self):
        sim = Simulator()
        world = CommWorld(paper_testbed(sim), n_ranks=2)
        with pytest.raises(MiddlewareError):
            world.spawn_rank(9, lambda comm, rank: None)

    def test_send_to_invalid_rank(self):
        sim = Simulator()
        world = CommWorld(paper_testbed(sim), n_ranks=2)
        caught = {}

        def program(comm, rank):
            if rank == 0:
                try:
                    comm.send(5, "x")
                except MiddlewareError:
                    caught["yes"] = True
                comm.send(1, "done")
            else:
                comm.recv(rank)

        world.spawn_all(program)
        sim.run()
        assert caught.get("yes")

    def test_scatter_needs_chunk_per_rank(self):
        sim = Simulator()
        world = CommWorld(paper_testbed(sim), n_ranks=3)
        failed = {}

        def program(comm, rank):
            if rank == 0:
                try:
                    comm.scatter(0, rank, chunks=[1, 2])  # wrong length
                except MiddlewareError:
                    failed["yes"] = True
                comm.scatter(0, rank, chunks=[1, 2, 3])
                return 1
            return comm.recv(rank, tag="scatter")

        world.spawn_all(program)
        sim.run()
        assert failed.get("yes")
        assert world.join_all()[1:] == [2, 3]
