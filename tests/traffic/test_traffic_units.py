"""Traffic-plane units: arrival processes, the Zipf tenant population,
the percentile recorder, and the generator's replay/trace contracts."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import AdmissionRejected, CallShed, DeadlineExceeded
from repro.sim import Simulator
from repro.traffic import (
    Arrival,
    BurstArrivals,
    DiurnalArrivals,
    PercentileRecorder,
    PoissonArrivals,
    TenantPopulation,
    TrafficGenerator,
)


class TestArrivals:
    def test_poisson_is_deterministic_and_ascending(self):
        first = PoissonArrivals(rate=10.0, seed=5).take(200)
        again = PoissonArrivals(rate=10.0, seed=5).take(200)
        assert first == again
        assert all(b > a for a, b in zip(first, first[1:]))

    def test_poisson_seed_changes_the_stream(self):
        assert PoissonArrivals(10.0, seed=1).take(50) != PoissonArrivals(
            10.0, seed=2
        ).take(50)

    def test_poisson_mean_gap_tracks_the_rate(self):
        times = PoissonArrivals(rate=50.0, seed=3).take(4000)
        mean_gap = times[-1] / len(times)
        assert math.isclose(mean_gap, 1 / 50.0, rel_tol=0.1)

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate must be > 0"):
            PoissonArrivals(rate=0.0)

    def test_diurnal_rate_oscillates_within_the_envelope(self):
        process = DiurnalArrivals(
            base_rate=10.0, amplitude=0.8, period=100.0, seed=1
        )
        rates = [process.rate(t) for t in range(0, 100, 5)]
        assert max(rates) <= process.peak_rate() + 1e-9
        assert min(rates) > 0
        assert max(rates) > 1.5 * min(rates)  # it genuinely varies

    def test_diurnal_peak_and_trough_density_differ(self):
        # a strong cycle concentrates arrivals around the peak quarter
        process = DiurnalArrivals(
            base_rate=20.0, amplitude=0.9, period=40.0, seed=7
        )
        times = [t for t in process.take(3000) if t < 400.0]
        # phase 0 rises first: peak quarter is [P/8, 3P/8) of each cycle
        peak = sum(1 for t in times if 0.125 <= (t % 40.0) / 40.0 < 0.375)
        trough = sum(1 for t in times if 0.625 <= (t % 40.0) / 40.0 < 0.875)
        assert peak > 2 * trough

    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(base_rate=1.0, amplitude=1.0)

    def test_burst_concentrates_arrivals_in_the_burst_window(self):
        process = BurstArrivals(
            base_rate=1.0, burst_rate=50.0, period=10.0, burst_len=1.0, seed=2
        )
        times = [t for t in process.take(2000) if t < 200.0]
        inside = sum(1 for t in times if (t % 10.0) < 1.0)
        assert inside / len(times) > 0.75

    def test_burst_validation(self):
        with pytest.raises(ValueError, match="burst_len"):
            BurstArrivals(
                base_rate=1.0, burst_rate=5.0, period=1.0, burst_len=2.0
            )


class TestTenantPopulation:
    def bands(self):
        return TenantPopulation(
            {"gold": 0.001, "silver": 0.05, "free": 0.949},
            users=1_000_000,
            exponent=1.1,
        )

    def test_band_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TenantPopulation({"a": 0.5, "b": 0.2})

    def test_band_bounds_partition_the_ranks(self):
        pop = self.bands()
        assert pop.tenants == ("gold", "silver", "free")
        assert pop.band("gold") == (1, 1000)
        assert pop.band("silver") == (1001, 51000)
        assert pop.band("free") == (51001, 1_000_000)
        assert pop.tenant_of(1) == "gold"
        assert pop.tenant_of(1000) == "gold"
        assert pop.tenant_of(1001) == "silver"
        assert pop.tenant_of(1_000_000) == "free"
        with pytest.raises(ValueError, match="rank"):
            pop.tenant_of(0)

    def test_draws_are_deterministic_and_in_range(self):
        pop = self.bands()
        first = [pop.draw(random.Random(9)) for _ in range(100)]
        again = [pop.draw(random.Random(9)) for _ in range(100)]
        assert first == again
        assert all(1 <= rank <= pop.users for rank, _ in first)

    def test_hot_band_dominates_traffic(self):
        # 0.1% of users (the gold band) must carry far more than 0.1%
        # of requests — that asymmetry is the point of the Zipf model
        pop = self.bands()
        rng = random.Random(4)
        counts = {"gold": 0, "silver": 0, "free": 0}
        n = 5000
        for _ in range(n):
            _, tenant = pop.draw(rng)
            counts[tenant] += 1
        gold_share = counts["gold"] / n
        assert gold_share > 0.5  # expected ~0.695 at s=1.1
        # and the continuous approximation agrees with the sample
        assert abs(gold_share - pop.expected_share("gold")) < 0.05

    def test_expected_shares_sum_to_one(self):
        pop = self.bands()
        total = sum(pop.expected_share(name) for name in pop.tenants)
        assert math.isclose(total, 1.0, rel_tol=1e-6)

    def test_single_user_population(self):
        pop = TenantPopulation({"only": 1.0}, users=1)
        assert pop.draw(random.Random(0)) == (1, "only")


class TestPercentileRecorder:
    def test_classification_by_exception(self):
        recorder = PercentileRecorder()
        for _ in range(4):
            recorder.offered("t")
        recorder.observe("t", None, 0.25)
        recorder.observe("t", CallShed("shed"), 0.1)
        recorder.observe("t", DeadlineExceeded("late"), 2.0)
        recorder.observe("t", AdmissionRejected("full"), 0.0)
        row = recorder.report()["t"]
        assert row["offered"] == 4
        assert row["completed"] == 1
        assert row["shed"] == 1
        assert row["deadline_missed"] == 1
        assert row["rejected"] == 1
        assert row["shed_rate"] == 0.25
        # CallShed IS an AdmissionError subclass: order of the isinstance
        # ladder matters, shed must not be double-counted as rejected
        assert row["rejected_rate"] == 0.25

    def test_unknown_exceptions_count_as_failed(self):
        recorder = PercentileRecorder()
        recorder.offered("t")
        recorder.observe("t", RuntimeError("boom"), 0.0)
        assert recorder.report()["t"]["failed"] == 1

    def test_nearest_rank_percentiles(self):
        recorder = PercentileRecorder()
        for value in range(1, 101):  # latencies 1..100
            recorder.completed("t", float(value))
        row = recorder.report()["t"]
        assert row["p50"] == 50.0
        assert row["p95"] == 95.0
        assert row["p99"] == 99.0
        assert recorder.percentile(0.99, "t") == 99.0
        assert recorder.percentile(1.0) == 100.0

    def test_percentiles_none_without_samples(self):
        recorder = PercentileRecorder()
        recorder.offered("t")
        row = recorder.report()["t"]
        assert row["p50"] is None and row["p99"] is None
        assert recorder.percentile(0.5, "t") is None
        assert recorder.percentile(0.5) is None

    def test_totals_across_tenants(self):
        recorder = PercentileRecorder()
        recorder.offered("a")
        recorder.offered("b")
        recorder.completed("b", 1.0)
        assert recorder.total("offered") == 2
        assert recorder.total("completed") == 1
        assert recorder.tenants() == ("a", "b")


class TestTrafficGenerator:
    def generator(self, **overrides):
        fields = dict(
            arrivals=PoissonArrivals(rate=5.0, seed=11),
            population=TenantPopulation(
                {"hot": 0.01, "cold": 0.99}, users=10_000, exponent=1.2
            ),
            seed=12,
            service=lambda rng: rng.expovariate(1 / 0.1),
        )
        fields.update(overrides)
        return TrafficGenerator(**fields)

    def test_schedule_is_a_deterministic_replay(self):
        first = self.generator().trace(50)
        again = self.generator().trace(50)
        assert first == again
        assert [a["index"] for a in first] == list(range(50))
        assert all(a["cost"] > 0 for a in first)

    def test_horizon_bounds_virtual_time(self):
        arrivals = list(self.generator().schedule(horizon=2.0))
        assert arrivals
        assert all(a.time <= 2.0 for a in arrivals)

    def test_limit_and_horizon_compose(self):
        assert len(list(self.generator().schedule(limit=3, horizon=100.0))) == 3

    def test_service_none_means_zero_cost(self):
        trace = self.generator(service=None).trace(5)
        assert [a["cost"] for a in trace] == [0.0] * 5

    def test_arrival_dict_round_trip(self):
        arrival = Arrival(0, 1.5, 42, "hot", 0.25)
        assert arrival.as_dict() == {
            "index": 0,
            "time": 1.5,
            "user": 42,
            "tenant": "hot",
            "cost": 0.25,
        }

    def test_run_spawns_handlers_at_arrival_instants(self):
        sim = Simulator()
        generator = self.generator()
        seen: list[tuple[int, float]] = []

        def handler(arrival):
            seen.append((arrival.index, sim.now))

        generator.run(sim, handler, limit=20)
        sim.run()
        expected = [(a.index, a.time) for a in generator.schedule(limit=20)]
        assert seen == expected
