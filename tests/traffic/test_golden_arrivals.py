"""Deterministic-seed regression for the traffic generator: the same
seeds replay the identical first-N arrivals — across two in-process
runs AND against the committed golden trace.  Any refactor that moves a
single rng draw (arrival thinning, Zipf sampling, service draws) shifts
every subsequent number and fails this test loudly.
"""

from __future__ import annotations

import json
import pathlib

from repro.traffic import DiurnalArrivals, TenantPopulation, TrafficGenerator

GOLDEN = pathlib.Path(__file__).with_name("golden_arrivals.json")

TRACE_LEN = 40


def make_generator():
    return TrafficGenerator(
        DiurnalArrivals(
            base_rate=20.0, amplitude=0.5, period=60.0, seed=21
        ),
        TenantPopulation(
            {"gold": 0.001, "silver": 0.05, "free": 0.949},
            users=1_000_000,
            exponent=1.1,
        ),
        seed=22,
        service=lambda rng: rng.expovariate(1 / 0.2),
    )


def test_same_seeds_replay_identical_arrivals():
    first = make_generator().trace(TRACE_LEN)
    second = make_generator().trace(TRACE_LEN)
    assert first == second
    assert len(first) == TRACE_LEN


def test_trace_matches_committed_golden():
    trace = make_generator().trace(TRACE_LEN)
    golden = json.loads(GOLDEN.read_text())
    assert trace == golden, (
        "arrival trace diverged from the committed golden trace — if "
        "the draw-order contract changed intentionally, regenerate "
        "tests/traffic/golden_arrivals.json from trace(40)"
    )
