"""Partition machinery units: splitters, collectors, strategy aspects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.errors import AdviceError
from repro.parallel import Composition
from repro.parallel.partition import (
    CallPiece,
    ResultCollector,
    WorkSplitter,
    dynamic_farm_module,
    farm_module,
    pipeline_module,
)
from repro.runtime import ThreadBackend, use_backend


class TestWorkSplitter:
    def test_defaults_broadcast_and_identity(self):
        splitter = WorkSplitter(duplicates=3)
        assert splitter.ctor_args((1, 2), {"k": 3}, 1) == ((1, 2), {"k": 3})
        pieces = splitter.split((5,), {})
        assert len(pieces) == 1 and pieces[0].args == (5,)
        assert splitter.combine([1, 2]) == [1, 2]
        assert splitter.forward_args("res", (5,), {}) == (("res",), {})

    def test_custom_hooks(self):
        splitter = WorkSplitter(
            duplicates=2,
            ctor_args=lambda a, k, i, n: ((a[0] + i,), {}),
            split=lambda a, k: [CallPiece(i, (v,)) for i, v in enumerate(a[0])],
            combine=sum,
        )
        assert splitter.ctor_args((10,), {}, 1) == ((11,), {})
        pieces = splitter.split(([1, 2, 3],), {})
        assert [p.args for p in pieces] == [(1,), (2,), (3,)]
        assert splitter.combine([1, 2, 3]) == 6

    def test_invalid_duplicates(self):
        with pytest.raises(AdviceError):
            WorkSplitter(duplicates=0)

    def test_merge_pieces_requires_hook(self):
        splitter = WorkSplitter(duplicates=1)
        with pytest.raises(AdviceError):
            splitter.merge_pieces([CallPiece(0, (1,))])


class TestResultCollector:
    def test_collects_in_deposit_order(self):
        with use_backend(ThreadBackend()):
            collector = ResultCollector(3)
            for v in "abc":
                collector.deposit(v)
            assert collector.wait(timeout=1) == ["a", "b", "c"]

    def test_zero_expected_completes_immediately(self):
        with use_backend(ThreadBackend()):
            assert ResultCollector(0).wait(timeout=1) == []

    def test_timeout_reports_progress(self):
        with use_backend(ThreadBackend()):
            collector = ResultCollector(2)
            collector.deposit("only-one")
            with pytest.raises(TimeoutError, match="1/2"):
                collector.wait(timeout=0.01)

    def test_fail_wakes_untimed_waiter_with_original_exception(self):
        # regression: a worker that raises before depositing used to
        # leave wait() (no timeout) blocked forever
        import threading

        with use_backend(ThreadBackend()):
            collector = ResultCollector(2)
            collector.deposit("partial")
            boom = ValueError("worker exploded")
            threading.Timer(0.02, lambda: collector.fail(boom)).start()
            with pytest.raises(ValueError) as info:
                collector.wait()  # deliberately no timeout
            assert info.value is boom  # the original exception object

    def test_first_failure_wins_and_latches(self):
        with use_backend(ThreadBackend()):
            collector = ResultCollector(3)
            first = RuntimeError("first")
            collector.fail(first)
            collector.fail(RuntimeError("second"))
            with pytest.raises(RuntimeError) as info:
                collector.wait(timeout=1)
            assert info.value is first

    def test_fail_racing_timed_wait_reports_failure_not_timeout(self):
        # regression (lock-ordering): a fail() latching exactly as a
        # timed wait() gives up used to surface as a bare TimeoutError
        # ("collector got n/m results") — the interleaving is forced
        # deterministically by latching the failure from inside the
        # event wait itself, then reporting the wait as timed out
        with use_backend(ThreadBackend()):
            collector = ResultCollector(3)
            collector.deposit("partial")
            boom = ValueError("worker exploded mid-wait")
            real_event = collector._done

            class RacingEvent:
                def set(self, value=None):
                    pass  # swallow fail()'s wakeup: the timeout "wins"

                def wait(self, timeout=None):
                    collector.fail(boom)  # latches during the wait window
                    return False  # ...and the timed wait "times out"

            collector._done = RacingEvent()
            try:
                with pytest.raises(ValueError) as info:
                    collector.wait(timeout=0.01)
            finally:
                collector._done = real_event
            assert info.value is boom

    def test_late_deposits_after_failure_latch_are_dropped(self):
        # regression (lock-ordering): deposits completing after the
        # failure latch used to keep counting toward `expected`,
        # delivering partial results for a call that already failed
        with use_backend(ThreadBackend()):
            collector = ResultCollector(2)
            collector.deposit("first")
            boom = RuntimeError("latched")
            collector.fail(boom)
            collector.deposit("straggler-1")
            collector.deposit("straggler-2")
            assert len(collector) == 1  # stragglers dropped, not counted
            with pytest.raises(RuntimeError) as info:
                collector.wait(timeout=1)
            assert info.value is boom
            # and an untimed wait after the latch fails the same way
            with pytest.raises(RuntimeError):
                collector.wait()


def weave_counter():
    class Counter:
        def __init__(self, base):
            self.base = base
            self.calls = 0

        def bump(self, values):
            self.calls += 1
            return [v + self.base for v in values]

    weave(Counter)
    return Counter


def list_splitter(duplicates, chunks):
    def split(args, kwargs):
        (values,) = args
        size = max(1, (len(values) + chunks - 1) // chunks)
        return [
            CallPiece(i, (values[start : start + size],))
            for i, start in enumerate(range(0, len(values), size))
        ]

    def combine(results):
        out = []
        for r in results:
            out.extend(r)
        return sorted(out)

    return WorkSplitter(duplicates=duplicates, split=split, combine=combine)


class TestFarmAspect:
    def test_pieces_route_round_robin(self):
        Counter = weave_counter()
        module = farm_module(
            list_splitter(2, 4),
            "initialization(Counter.new(..))",
            "call(Counter.bump(..))",
        )
        comp = Composition("farm", [module])
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Counter]):
                counter = Counter(10)
                result = counter.bump(list(range(8)))
        aspect = module.coordinator
        assert result == [v + 10 for v in range(8)]
        assert len(aspect.workers) == 2
        # 4 pieces over 2 workers round-robin: 2 calls each
        assert [w.calls for w in aspect.workers] == [2, 2]

    def test_no_creation_seen_means_plain_call(self):
        Counter = weave_counter()
        module = farm_module(
            list_splitter(2, 4),
            "initialization(Widget.new(..))",  # never matches Counter
            "call(Counter.bump(..))",
        )
        comp = Composition("farm", [module])
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Counter]):
                counter = Counter(1)
                result = counter.bump([1, 2])
        assert result == [2, 3]
        assert counter.calls == 1


class TestPipelineAspect:
    def test_forwarding_counts_and_stage_traversal(self):
        Counter = weave_counter()
        splitter = list_splitter(3, 2)
        module = pipeline_module(
            splitter,
            "initialization(Counter.new(..))",
            "call(Counter.bump(..))",
        )
        comp = Composition("pipe", [module])
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Counter]):
                counter = Counter(1)
                result = counter.bump([0, 0, 0, 0])
        split_aspect = module.aspects[0]
        forward_aspect = module.aspects[1]
        # each of 3 stages adds base=1: every element gains 3
        assert result == [3, 3, 3, 3]
        # 2 pieces × (3-1) forwards
        assert forward_aspect.forwards == 4
        assert split_aspect.split_calls == 1
        # every stage saw every piece
        assert [s.calls for s in split_aspect.instances] == [2, 2, 2]

    def test_first_stage_returned_to_client(self):
        Counter = weave_counter()
        module = pipeline_module(
            list_splitter(3, 2),
            "initialization(Counter.new(..))",
            "call(Counter.bump(..))",
        )
        comp = Composition("pipe", [module])
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Counter]):
                counter = Counter(1)
                aspect = module.coordinator
                assert counter is aspect.first
                assert aspect.next[id(aspect.instances[-1])] is None


class TestDynamicFarmAspect:
    def test_demand_driven_serves_all_pieces(self):
        Counter = weave_counter()
        module = dynamic_farm_module(
            list_splitter(3, 9),
            "initialization(Counter.new(..))",
            "call(Counter.bump(..))",
        )
        comp = Composition("dyn", [module])
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Counter]):
                counter = Counter(5)
                result = counter.bump(list(range(9)))
        aspect = module.coordinator
        assert result == [v + 5 for v in range(9)]
        assert sum(aspect.served.values()) == 9
        # demand-driven: whichever workers were hungry took the work —
        # with real threads a fast worker may drain the queue alone, so
        # only the ledger total is deterministic.
        assert set(aspect.served) == {0, 1, 2}
