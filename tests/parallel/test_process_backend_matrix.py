"""The PR 4/5 overlap + admission + deadline matrix on the PROCESS
backend: all five partition strategies with servants living in resident
worker processes, overlapped submissions beyond ``max_in_flight``
observably blocking / failing / shedding per policy, and per-call
deadlines expiring *mid reply-wait* while the workers keep serving.

The thread matrix's ``threading.Event`` gates cannot work here — workers
are forked at export time, so the child holds a *copy* of any Event and
the parent's ``set()`` never reaches it.  These tests gate through the
filesystem instead: the servant method polls for a gate file's
existence, the parent ``touch``es it — fork-safe because the path is a
string captured at fork and the filesystem is shared.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from repro.api import ParallelApp, StackSpec
from repro.errors import (
    AdmissionRejected,
    CallShed,
    DeadlineExceeded,
)
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.parallel import WorkSplitter
from repro.parallel.partition import CallPiece

STRATEGIES = ["farm", "dynamic-farm", "pipeline", "heartbeat", "divide-conquer"]


def wait_until(cond, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


def _wait_gate(path, timeout=10.0):
    """Park until the gate file exists (the fork-safe Event.wait)."""
    if path is None:
        return
    deadline = time.time() + timeout
    while time.time() < deadline and not os.path.exists(path):
        time.sleep(0.01)


class GatedEcho:
    """Gated doubling worker (farm / dynamic-farm / pipeline target)."""

    gate_path: str | None = None

    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        _wait_gate(GatedEcho.gate_path)
        return [v * 2 for v in values]


class GatedBlock:
    """Gated heartbeat target: unit residual + no-op halo accessors."""

    gate_path: str | None = None

    def __init__(self, size=4):
        self.size = size

    def step(self, iterations):
        _wait_gate(GatedBlock.gate_path)
        return 1.0

    def get_boundary(self, side):
        return 0.0

    def set_boundary(self, side, data):
        return None


class GatedSummer:
    """Gated divide-and-conquer target."""

    gate_path: str | None = None

    def total(self, values):
        _wait_gate(GatedSummer.gate_path)
        return sum(values)


_TARGETS = (GatedEcho, GatedBlock, GatedSummer)


def _dnc_options():
    return dict(
        should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
        divide=lambda args, kwargs: [
            CallPiece(0, (args[0][: len(args[0]) // 2],)),
            CallPiece(1, (args[0][len(args[0]) // 2:],)),
        ],
        merge=sum,
    )


class Case:
    """One strategy's target, spec fields, payloads, and expectations."""

    def __init__(self, strategy):
        self.strategy = strategy
        if strategy in ("farm", "dynamic-farm", "pipeline"):
            self.target, self.start_args = GatedEcho, ()
            self.fields = dict(
                target=GatedEcho,
                work="bump",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy=strategy,
            )
            factor = 4 if strategy == "pipeline" else 2
            self.payload = lambda i: ([i, i + 10],)
            self.expected = lambda i: [i * factor, (i + 10) * factor]
        elif strategy == "heartbeat":
            self.target, self.start_args = GatedBlock, (4,)
            self.fields = dict(
                target=GatedBlock,
                work="step",
                splitter=WorkSplitter(duplicates=2, combine=sum),
                strategy="heartbeat",
            )
            self.payload = lambda i: (2,)
            self.expected = lambda i: 2.0
        else:  # divide-conquer
            self.target, self.start_args = GatedSummer, ()
            self.fields = dict(
                target=GatedSummer,
                work="total",
                strategy="divide-conquer",
                strategy_options=_dnc_options(),
            )
            self.payload = lambda i: (list(range(i, i + 8)),)
            self.expected = lambda i: sum(range(i, i + 8))

    def process_app(self, **admission):
        return ParallelApp(
            StackSpec(backend="process", **self.fields, **admission)
        )


@pytest.fixture(autouse=True)
def clear_gates():
    for target in _TARGETS:
        target.gate_path = None
    yield
    for target in _TARGETS:
        target.gate_path = None


@pytest.fixture()
def gate(tmp_path):
    """A (path, open) pair: arm a target's ``gate_path`` with the path
    BEFORE ``app.start()`` (workers fork at export and capture it), call
    ``open()`` to release every parked servant call."""
    path = str(tmp_path / "gate")
    return path, lambda: open(path, "w").close()


class TestProcessPolicies:
    """Gate-held overlap with out-of-process servants: the admission
    table is provably full while the workers are parked on the gate."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fail_rejects_beyond_max_in_flight(self, strategy, gate):
        gate_path, open_gate = gate
        case = Case(strategy)
        app = case.process_app(max_in_flight=2, overflow="fail")
        case.target.gate_path = gate_path
        with app:
            app.start(*case.start_args)
            futures = [app.submit(*case.payload(i)) for i in range(2)]
            assert app.admitted == 2  # slots acquired synchronously
            with pytest.raises(AdmissionRejected, match="2 calls already"):
                app.submit(*case.payload(2))
            assert app.admission.rejected == 1
            open_gate()
            results = [f.result(timeout=20) for f in futures]
        assert results == [case.expected(i) for i in range(2)]
        assert wait_until(lambda: app.admitted == 0)
        assert app.backend.live_workers == 0  # undeploy stopped them

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shed_oldest_cancels_oldest_in_flight_call(self, strategy, gate):
        gate_path, open_gate = gate
        case = Case(strategy)
        app = case.process_app(max_in_flight=1, overflow="shed-oldest")
        case.target.gate_path = gate_path
        with app:
            app.start(*case.start_args)
            oldest = app.submit(*case.payload(0))
            newest = app.submit(*case.payload(1))  # sheds `oldest`
            assert app.admission.shed_calls == 1
            assert oldest.admission.cancelled
            open_gate()
            assert newest.result(timeout=20) == case.expected(1)
            with pytest.raises(CallShed):
                oldest.result(timeout=20)
        assert wait_until(lambda: app.admitted == 0)
        assert app.in_flight == 0  # shed tickets retired, none leaked

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_block_parks_submitter_until_a_slot_frees(self, strategy, gate):
        gate_path, open_gate = gate
        case = Case(strategy)
        app = case.process_app(max_in_flight=1, overflow="block")
        case.target.gate_path = gate_path
        second: dict = {}
        with app:
            app.start(*case.start_args)
            first = app.submit(*case.payload(0))

            def blocked_submitter():
                second["future"] = app.submit(*case.payload(1))

            thread = threading.Thread(target=blocked_submitter)
            thread.start()
            assert wait_until(lambda: app.admission.waiting == 1)
            assert "future" not in second  # genuinely parked
            open_gate()  # first call drains, hands its slot off
            thread.join(timeout=20)
            assert first.result(timeout=20) == case.expected(0)
            assert second["future"].result(timeout=20) == case.expected(1)
        assert app.admission.blocked == 1
        assert wait_until(lambda: app.admitted == 0)


class TestProcessOverlap:
    """Overlapped in-flight submissions genuinely coexist on the
    process backend (the PR 4 per-call ticket guarantees, across the
    process boundary)."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_overlapped_submissions_all_deliver(self, strategy, gate):
        gate_path, open_gate = gate
        case = Case(strategy)
        app = case.process_app(max_in_flight=None)
        case.target.gate_path = gate_path
        with app:
            app.start(*case.start_args)
            futures = [app.submit(*case.payload(i)) for i in range(3)]
            # every call holds a live ticket while the workers are parked
            assert wait_until(lambda: app.admission.peak_admitted >= 3)
            open_gate()
            results = [f.result(timeout=30) for f in futures]
        assert results == [case.expected(i) for i in range(3)]
        assert wait_until(lambda: app.admitted == 0)

    def test_results_route_to_their_own_call(self, gate):
        # interleaved payloads must come back on their own futures —
        # the context_id / call_id plumbing across the pipe, end to end
        case = Case("farm")
        app = case.process_app()
        with app:
            app.start()
            futures = [app.submit(*case.payload(i)) for i in range(8)]
            for i, future in enumerate(futures):
                assert future.result(timeout=20) == case.expected(i)


class TestProcessDeadlines:
    """Per-call deadlines expire DURING the reply wait: the submitter
    unwinds with the ticket's trace while the worker process survives
    and keeps serving later calls (its stale reply is discarded)."""

    @pytest.mark.parametrize("strategy", ["farm", "dynamic-farm", "pipeline"])
    def test_deadline_expires_mid_reply_wait(self, strategy, gate):
        gate_path, open_gate = gate
        case = Case(strategy)
        app = case.process_app()
        case.target.gate_path = gate_path
        with app:
            app.start(*case.start_args)
            doomed = app.submit(*case.payload(0), timeout=0.2)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=20)
            # the workers survived the expiry: open the gate and the SAME
            # deployment serves the next call (stale replies are matched
            # by call_id and dropped, so the pipe stays in sync)
            open_gate()
            follow_up = app.submit(*case.payload(1))
            assert follow_up.result(timeout=20) == case.expected(1)
            assert app.backend.live_workers > 0
        assert wait_until(lambda: app.admitted == 0)

    def test_deadline_trace_present(self, gate):
        gate_path, open_gate = gate
        case = Case("farm")
        app = case.process_app()
        case.target.gate_path = gate_path
        with app:
            app.start()
            doomed = app.submit(*case.payload(0), timeout=0.2)
            with pytest.raises(DeadlineExceeded) as err:
                doomed.result(timeout=20)
            assert err.value.trace is not None
            open_gate()


class TestProcessFaultMatrix:
    """The fault axis on the process backend: every strategy, retry
    armed, absorbs a first-call ``kill_worker`` (a real SIGKILLed worker
    process: the crash surfaces as ``WorkerCrashed``, the middleware
    refills the export, the retry completes the split) and a
    ``drop_reply`` (the servant ran, the matched reply is discarded).

    The fault site is ``"proc"`` (the middleware round trip) except for
    divide-and-conquer, whose branch workers are call-time clones living
    in the parent — its boundary is the ``"dispatch"`` site.  Heartbeat
    rides along because its block servant is stateless, so a refilled
    worker's deploy-time state is the correct recovery state.
    """

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("fault", [None, "kill_worker", "drop_reply"])
    def test_strategy_completes_under_fault(self, strategy, fault):
        site = "dispatch" if strategy == "divide-conquer" else "proc"
        schedule = (
            FaultSchedule(
                [FaultEvent(fault, site=site, on_call=1)],
                name=f"{strategy}-{fault}",
            )
            if fault
            else None
        )
        case = Case(strategy)
        app = case.process_app(
            faults=schedule, retry=RetryPolicy(max_attempts=3)
        )
        with app:
            app.start(*case.start_args)
            futures = [app.submit(*case.payload(i)) for i in range(2)]
            results = [f.result(timeout=30) for f in futures]
        assert results == [case.expected(i) for i in range(2)]
        assert wait_until(lambda: app.admitted == 0)
        assert app.in_flight == 0
        if schedule is not None:
            assert schedule.fired_count() >= 1
            if fault == "kill_worker" and site == "proc":
                # the crash was a real process death, and the export
                # was refilled behind the same ref
                assert app.middleware.worker_crashes >= 1
                assert app.middleware.worker_respawns >= 1


class TestProcessHygiene:
    """No resident worker process outlives its deployment."""

    def test_workers_stop_on_exit(self, gate):
        case = Case("farm")
        app = case.process_app()
        with app:
            app.start()
            assert app.backend.live_workers == 2  # one per duplicate
            assert app.submit(*case.payload(0)).result(timeout=20) == (
                case.expected(0)
            )
        assert wait_until(lambda: app.backend.live_workers == 0)
        assert wait_until(
            lambda: not multiprocessing.active_children()
        ), "leaked child processes"

    def test_shutdown_is_idempotent(self):
        case = Case("farm")
        app = case.process_app()
        with app:
            app.start()
        app.middleware.shutdown()
        app.middleware.shutdown()
        assert app.backend.live_workers == 0
