"""Resident worker pool: the dynamic farm's per-deployment dispatcher
activities (pinned PooledSpawner) amortise spawn cost across overlapped
submissions, survive failures, and retire on undeploy."""

from __future__ import annotations

import threading

import pytest

from repro.api import ParallelApp, StackSpec
from repro.parallel import WorkSplitter
from repro.parallel.concurrency.asynchronous import PooledSpawner
from repro.runtime import ThreadBackend, use_backend


class Echo:
    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        return [v * 2 for v in values]


def dynfarm_app(duplicates=3, **strategy_options):
    backend = ThreadBackend()
    app = ParallelApp(
        StackSpec(
            target=Echo,
            work="bump",
            splitter=WorkSplitter(duplicates=duplicates, combine=lambda rs: rs[0]),
            strategy="dynamic-farm",
            strategy_options=strategy_options,
            backend=backend,
        )
    )
    return backend, app


class TestResidentPool:
    def test_resident_pool_amortises_dispatcher_spawns(self):
        backend, app = dynfarm_app(duplicates=3)
        with app:
            app.start()
            assert app.partition._pool is not None
            # warm-up: the first submit spawns the 3 resident
            # dispatchers (plus its own submission activity)
            app.submit([1]).result(timeout=10)
            warm = backend.spawned
            for i in range(4):
                assert app.submit([i]).result(timeout=10) == [i * 2]
            # steady state: ONE spawn per submit (the submission
            # activity) — zero dispatcher spawns on the hot path
            assert backend.spawned - warm == 4
            assert app.partition._pool.executed >= 3 * 5

    def test_respawn_mode_spawns_dispatchers_per_call(self):
        backend, app = dynfarm_app(duplicates=3, resident_pool=False)
        with app:
            app.start()
            assert app.partition._pool is None
            app.submit([1]).result(timeout=10)
            warm = backend.spawned
            for i in range(4):
                assert app.submit([i]).result(timeout=10) == [i * 2]
            # 1 submission activity + 3 fresh dispatchers per call: the
            # cost the resident pool removes
            assert backend.spawned - warm == 4 * (1 + 3)

    def test_pool_retires_on_undeploy(self):
        _, app = dynfarm_app(duplicates=2)
        with app:
            app.start()
            pool = app.partition._pool
            assert pool is not None and not pool.started
            app.submit([1]).result(timeout=10)
            assert pool.started
        assert app.partition._pool is None  # on_undeploy stopped it

    def test_worker_failure_does_not_kill_the_resident_dispatcher(self):
        class Moody:
            def __init__(self, tag=0):
                self.tag = tag

            def bump(self, values):
                if values and values[0] == "boom":
                    raise ValueError("worker exploded")
                return [v * 2 for v in values]

        backend = ThreadBackend()
        app = ParallelApp(
            StackSpec(
                target=Moody,
                work="bump",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy="dynamic-farm",
                backend=backend,
            )
        )
        with app:
            app.start()
            with pytest.raises(ValueError, match="worker exploded"):
                app.submit(["boom"]).result(timeout=10)
            spawned = backend.spawned
            # the SAME resident dispatchers serve the next call — no
            # respawn happened after the failure
            assert app.submit([4]).result(timeout=10) == [8]
            assert backend.spawned - spawned == 1  # just the submission
            assert app.in_flight == 0


class TestPinnedPooledSpawner:
    def test_pinned_tasks_run_on_their_designated_resident(self):
        pool = PooledSpawner(2, pinned=True)
        backend = ThreadBackend()
        ran: dict[int, str] = {}
        done = threading.Event()

        def task(i):
            ran[i] = threading.current_thread().name
            if len(ran) == 4:
                done.set()

        with use_backend(backend):
            for i in range(4):
                pool.spawn(backend, lambda i=i: task(i), index=i)
        try:
            assert done.wait(5)
            # index routes modulo pool size onto the pinned resident
            assert ran[0] == ran[2] == "pool.worker0"
            assert ran[1] == ran[3] == "pool.worker1"
        finally:
            pool.stop()

    def test_raising_task_is_recorded_and_the_resident_survives(self):
        pool = PooledSpawner(1, pinned=True)
        backend = ThreadBackend()
        done = threading.Event()
        with use_backend(backend):
            pool.spawn(backend, lambda: 1 / 0, index=0)
            pool.spawn(backend, done.set, index=0)
        try:
            assert done.wait(5)  # the resident outlived the ZeroDivision
            assert pool.task_failures == 1
            assert pool.executed == 2
        finally:
            pool.stop()

    def test_shared_mode_keeps_legacy_single_queue_shape(self):
        pool = PooledSpawner(2)
        backend = ThreadBackend()
        done = threading.Event()
        hits = []
        with use_backend(backend):
            for i in range(4):
                pool.spawn(
                    backend,
                    lambda i=i: (hits.append(i), done.set() if i == 3 else None),
                )
        try:
            assert done.wait(5)
            assert pool.started and len(pool._queues) == 1
        finally:
            pool.stop()
