"""Concurrent-submission stress: per-call dispatch contexts.

One deployed stack must serve many overlapped ``submit()``s — the
aspects hold only topology, every in-flight call owns a
:class:`~repro.parallel.partition.base.DispatchContext`.  For each of
the five skeletons (farm, dynamic-farm, pipeline, heartbeat,
divide-and-conquer) on both backends these tests drive N overlapped
submissions and assert:

* every submission resolves to exactly its own payload's result
  (non-interleaved: no cross-call deposit or combine);
* the stack genuinely overlapped (``peak_in_flight >= 2`` — on the
  thread backend a test-controlled gate holds every call in flight at
  once; on the sim backend cooperative blocking guarantees it);
* every ticket retires (``in_flight == 0`` afterwards).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.aop.weaver import default_weaver
from repro.api import ParallelApp, StackSpec
from repro.cluster import paper_testbed
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.parallel import (
    Composition,
    WorkSplitter,
    concurrency_module,
    divide_and_conquer_module,
)
from repro.parallel.partition import CallPiece
from repro.runtime import SimBackend, ThreadBackend, use_backend
from repro.sim import Simulator

N = 3  # overlapped submissions per stress run


def wait_until(cond, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


def single_piece_splitter(duplicates):
    """Default split (one piece) with the piece's result as the call's
    result — the simplest shape that still exercises routing."""
    return WorkSplitter(duplicates=duplicates, combine=lambda rs: rs[0])


class Echo:
    """Gated worker: ``bump`` doubles, optionally parking on the class
    gate so the test can hold every submission in flight at once."""

    gate: threading.Event | None = None

    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        if Echo.gate is not None:
            Echo.gate.wait(5)
        return [v * 2 for v in values]


class Block:
    """Minimal heartbeat target: unit residual + no-op halo accessors."""

    gate: threading.Event | None = None

    def __init__(self, size=4):
        self.size = size

    def step(self, iterations):
        if Block.gate is not None:
            Block.gate.wait(5)
        return 1.0

    def get_boundary(self, side):
        return 0.0

    def set_boundary(self, side, data):
        return None


class Summer:
    """Divide-and-conquer target: gated leaf summation."""

    gate: threading.Event | None = None

    def total(self, values):
        if Summer.gate is not None:
            Summer.gate.wait(5)
        return sum(values)


def echo_spec(strategy, **overrides):
    fields = dict(
        target=Echo,
        work="bump",
        splitter=single_piece_splitter(2),
        strategy=strategy,
        backend="thread",
    )
    fields.update(overrides)
    return StackSpec(**fields)


def block_spec(**overrides):
    fields = dict(
        target=Block,
        work="step",
        splitter=WorkSplitter(duplicates=2, combine=sum),
        strategy="heartbeat",
        backend="thread",
    )
    fields.update(overrides)
    return StackSpec(**fields)


PAYLOADS = [list(range(i, i + 4)) for i in range(N)]
EXPECTED = [[v * 2 for v in payload] for payload in PAYLOADS]


class TestThreadOverlap:
    """Gate-held overlap on real threads: deterministic ``in_flight``."""

    def _run_gated(self, app, start_args=()):
        Echo.gate = threading.Event()
        try:
            with app:
                app.start(*start_args)
                futures = [app.submit(payload) for payload in PAYLOADS]
                # every split must open its ticket while the gate holds
                assert wait_until(lambda: app.in_flight >= 2), (
                    f"never overlapped: in_flight={app.in_flight}"
                )
                Echo.gate.set()
                results = [f.result(timeout=10) for f in futures]
        finally:
            Echo.gate = None
        assert results == EXPECTED  # each future got its own payload back
        assert app.peak_in_flight >= 2
        assert app.in_flight == 0
        assert app.partition.dispatches == N

    def test_farm_overlapped_submits(self):
        self._run_gated(ParallelApp(echo_spec("farm")))

    def test_dynamic_farm_overlapped_submits(self):
        self._run_gated(ParallelApp(echo_spec("dynamic-farm")))

    def test_pipeline_sustains_two_in_flight_splits(self):
        # the acceptance regression: a deployed pipeline serves >= 2
        # concurrent in-flight splits (the seed's per-aspect collector
        # allowed exactly one)
        app = ParallelApp(echo_spec("pipeline", splitter=WorkSplitter(
            duplicates=2, combine=lambda rs: rs[0])))
        Echo.gate = threading.Event()
        try:
            with app:
                app.start()
                futures = [app.submit(payload) for payload in PAYLOADS]
                assert wait_until(lambda: app.in_flight >= 2)
                held = app.in_flight
                Echo.gate.set()
                results = [f.result(timeout=10) for f in futures]
        finally:
            Echo.gate = None
        assert held >= 2
        # two stages double twice; deposits landed in the originating
        # call's collector, so every future sees its own payload *4
        assert results == [[v * 4 for v in payload] for payload in PAYLOADS]
        assert app.peak_in_flight >= 2
        assert app.in_flight == 0
        co = app.partition
        assert co.dispatches == N
        # forwarding cursor lived on the tickets, not the aspect
        assert not hasattr(co, "collector")

    def test_heartbeat_overlapped_submits(self):
        app = ParallelApp(block_spec())
        Block.gate = threading.Event()
        try:
            with app:
                app.start(4)
                futures = [app.submit(2) for _ in range(N)]
                assert wait_until(lambda: app.in_flight >= 2)
                Block.gate.set()
                results = [f.result(timeout=10) for f in futures]
        finally:
            Block.gate = None
        # 2 blocks x residual 1.0 per iteration, last iteration combined
        assert results == [2.0] * N
        assert app.peak_in_flight >= 2
        assert app.in_flight == 0
        assert app.partition.dispatches == N

    def test_divide_conquer_overlapped_calls(self):
        default_weaver.weave(Summer)
        module = divide_and_conquer_module(
            should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
            divide=lambda args, kwargs: [
                CallPiece(0, (args[0][: len(args[0]) // 2],)),
                CallPiece(1, (args[0][len(args[0]) // 2:],)),
            ],
            merge=sum,
            work="call(Summer.total(..))",
        )
        comp = Composition("dnc", [module])
        aspect = module.coordinator
        payloads = [list(range(i, i + 8)) for i in range(N)]
        results: dict[int, int] = {}
        Summer.gate = threading.Event()
        try:
            with use_backend(ThreadBackend()):
                with comp.deployed(default_weaver, targets=[Summer]):
                    obj = Summer()
                    threads = [
                        threading.Thread(
                            target=lambda i=i: results.__setitem__(
                                i, obj.total(payloads[i])
                            )
                        )
                        for i in range(N)
                    ]
                    for t in threads:
                        t.start()
                    assert wait_until(lambda: len(aspect.contexts) >= 2)
                    Summer.gate.set()
                    for t in threads:
                        t.join(timeout=10)
        finally:
            Summer.gate = None
        assert results == {i: sum(payloads[i]) for i in range(N)}
        assert aspect.peak_in_flight >= 2
        assert not aspect.contexts
        assert aspect.dispatches == N


class TestFailFast:
    """Worker exceptions propagate into the per-call collector."""

    def test_pipeline_worker_exception_fails_submit_fast(self):
        class Boomer:
            def bump(self, values):
                if values and values[0] == "boom":
                    raise ValueError("stage exploded")
                return values

        app = ParallelApp(
            StackSpec(
                target=Boomer,
                work="bump",
                splitter=single_piece_splitter(2),
                strategy="pipeline",
                backend="thread",
            )
        )
        with app:
            app.start()
            # regression: this used to hang forever — the collector never
            # saw a deposit and wait() had no timeout
            future = app.submit(["boom"])
            try:
                future.result(timeout=10)
            except ValueError as exc:
                assert "stage exploded" in str(exc)
            else:  # pragma: no cover - regression guard
                raise AssertionError("worker exception was swallowed")
            # the stack is not poisoned: the next submission still works
            assert app.submit(["fine"]).result(timeout=10) == ["fine"]
            assert app.in_flight == 0

    def test_forwarding_hook_exception_fails_submit_fast(self):
        # the latch must also cover the forwarding step itself: a
        # forward_args hook that raises used to strand the collector
        class Plain:
            def bump(self, values):
                return values

        def bad_forward(result, args, kwargs):
            raise ValueError("forward hook exploded")

        app = ParallelApp(
            StackSpec(
                target=Plain,
                work="bump",
                splitter=WorkSplitter(
                    duplicates=2,
                    combine=lambda rs: rs[0],
                    forward_args=bad_forward,
                ),
                strategy="pipeline",
                backend="thread",
            )
        )
        with app:
            app.start()
            future = app.submit([1, 2, 3])
            try:
                future.result(timeout=10)
            except ValueError as exc:
                assert "forward hook exploded" in str(exc)
            else:  # pragma: no cover - regression guard
                raise AssertionError("forwarding exception was swallowed")
            assert app.in_flight == 0


FAULTS = [None, "kill_worker", "drop_reply"]
FAULT_STRATEGIES = [
    "farm",
    "dynamic-farm",
    "pipeline",
    "heartbeat",
    "divide-conquer",
]


def _dnc_spec(**overrides):
    fields = dict(
        target=Summer,
        work="total",
        strategy="divide-conquer",
        strategy_options=dict(
            should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
            divide=lambda args, kwargs: [
                CallPiece(0, (args[0][: len(args[0]) // 2],)),
                CallPiece(1, (args[0][len(args[0]) // 2:],)),
            ],
            merge=sum,
        ),
        backend="thread",
    )
    fields.update(overrides)
    return StackSpec(**fields)


class TestThreadFaultMatrix:
    """The overlap matrix's fault axis: every strategy, with a retry
    policy armed, absorbs a first-dispatch ``kill_worker`` (fails before
    the piece runs → re-dispatched to a healthy worker) and a
    ``drop_reply`` (the piece RAN, its reply is lost → re-dispatch plus
    keyed dedup keep exactly one result) — and the no-fault run stays
    byte-identical to the plain suite."""

    @pytest.mark.parametrize("strategy", FAULT_STRATEGIES)
    @pytest.mark.parametrize("fault", FAULTS)
    def test_strategy_completes_under_fault(self, strategy, fault):
        schedule = (
            FaultSchedule(
                [FaultEvent(fault, site="dispatch", on_call=1)],
                name=f"{strategy}-{fault}",
            )
            if fault
            else None
        )
        retry = RetryPolicy(max_attempts=3)
        if strategy == "heartbeat":
            app = ParallelApp(block_spec(faults=schedule, retry=retry))
            start_args, payloads, expected = (4,), [2, 2], [2.0, 2.0]
        elif strategy == "divide-conquer":
            app = ParallelApp(_dnc_spec(faults=schedule, retry=retry))
            payloads = [list(range(i, i + 8)) for i in range(2)]
            start_args, expected = (), [sum(p) for p in payloads]
        else:
            app = ParallelApp(echo_spec(strategy, faults=schedule, retry=retry))
            factor = 4 if strategy == "pipeline" else 2
            payloads = PAYLOADS[:2]
            start_args = ()
            expected = [[v * factor for v in p] for p in payloads]
        with app:
            app.start(*start_args)
            futures = [app.submit(payload) for payload in payloads]
            results = [f.result(timeout=15) for f in futures]
        assert results == expected
        assert app.in_flight == 0
        if schedule is not None:
            assert schedule.fired_count() >= 1  # the fault genuinely fired


class TestSimOverlap:
    """Overlap on the simulated cluster: submissions made from inside
    the simulation block cooperatively (middleware replies, futures), so
    every submission's ticket is live while the others progress."""

    def _run_sim_app(self, spec_builder, start_args, payloads, submit=None):
        sim = Simulator()
        cluster = paper_testbed(sim)
        app = ParallelApp(
            spec_builder(middleware="mpp", cluster=cluster, backend="sim")
        )
        out = {}

        def main():
            app.start(*start_args)
            futures = [
                (submit or app.submit)(payload) for payload in payloads
            ]
            out["results"] = [f.result() for f in futures]
            out["peak"] = app.peak_in_flight
            out["live"] = app.in_flight

        try:
            with app:
                sim.spawn(main, name="stress-driver")
                sim.run()
        finally:
            sim.shutdown()
        assert out["peak"] >= 2
        assert out["live"] == 0
        assert app.partition.dispatches == len(payloads)
        return out["results"]

    def test_farm_overlapped_submits(self):
        results = self._run_sim_app(
            lambda **kw: echo_spec("farm", **kw), (), PAYLOADS
        )
        assert results == EXPECTED

    def test_dynamic_farm_overlapped_submits(self):
        results = self._run_sim_app(
            lambda **kw: echo_spec("dynamic-farm", **kw), (), PAYLOADS
        )
        assert results == EXPECTED

    def test_pipeline_overlapped_submits(self):
        results = self._run_sim_app(
            lambda **kw: echo_spec("pipeline", **kw), (), PAYLOADS
        )
        assert results == [[v * 4 for v in payload] for payload in PAYLOADS]

    def test_heartbeat_overlapped_submits(self):
        results = self._run_sim_app(
            lambda **kw: block_spec(**kw), (4,), [2] * N
        )
        assert results == [2.0] * N

    def test_divide_conquer_overlapped_calls(self):
        default_weaver.weave(Summer)
        module = divide_and_conquer_module(
            should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
            divide=lambda args, kwargs: [
                CallPiece(0, (args[0][: len(args[0]) // 2],)),
                CallPiece(1, (args[0][len(args[0]) // 2:],)),
            ],
            merge=sum,
            work="call(Summer.total(..))",
        )
        conc = concurrency_module("call(Summer.total(..))")
        comp = Composition("dnc-sim", [module, conc])
        aspect = module.coordinator
        sim = Simulator()
        backend = SimBackend(sim)
        payloads = [list(range(i, i + 8)) for i in range(N)]
        results: dict[int, int] = {}

        def caller(i):
            with use_backend(backend):
                results[i] = Summer().total(payloads[i])

        try:
            with comp.deployed(default_weaver, targets=[Summer]):
                for i in range(N):
                    sim.spawn(lambda i=i: caller(i), name=f"dnc-caller{i}")
                sim.run()
        finally:
            sim.shutdown()
        assert results == {i: sum(payloads[i]) for i in range(N)}
        assert aspect.peak_in_flight >= 2
        assert not aspect.contexts
