"""Live module swap: unplug/exchange on a *deployed* composition.

The paper's "(un)plug on the fly" claim, tested at the composition
level: swapping a partition strategy or removing a concern mid-run must
keep the weaver's deployment registry and the compiled plans consistent
— calls made after the swap see exactly the new module set.
"""

from __future__ import annotations

import numpy as np

from repro.aop.joinpoint import JoinPointKind
from repro.aop.weaver import default_weaver
from repro.apps.primes import PrimeFilter, SieveWorkload, expected_sieve_output
from repro.parallel import (
    Composition,
    concurrency_module,
    farm_module,
    pipeline_module,
)
from repro.runtime import Future, ThreadBackend, use_backend

MAX = 10_000
PACKS = 4

CREATION = "initialization(PrimeFilter.new(..))"
WORK = "call(PrimeFilter.filter(..))"


def run_filter(workload):
    pf = PrimeFilter(2, workload.sqrt)
    result = pf.filter(workload.candidates)
    if isinstance(result, Future):
        result = result.result()
    return np.sort(np.asarray(result))


class TestExchangeWhileDeployed:
    def test_pipeline_to_farm_exchange_mid_run(self):
        workload = SieveWorkload(MAX, PACKS)
        pipeline = pipeline_module(
            workload.pipeline_splitter(3), CREATION, WORK, name="partition"
        )
        comp = Composition(
            "swap", [pipeline, concurrency_module(WORK, WORK)]
        )
        expected = expected_sieve_output(MAX)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[PrimeFilter]):
                assert np.array_equal(run_filter(workload), expected)
                # the Section 7 move: swap the partition strategy live
                farm = farm_module(
                    workload.farm_splitter(3), CREATION, WORK, name="partition"
                )
                removed = comp.exchange("partition", farm)
                assert removed is pipeline
                # old aspects are gone from the weaver, new ones are live
                deployed = default_weaver.deployed
                for aspect in pipeline.aspects:
                    assert aspect not in deployed
                for aspect in farm.aspects:
                    assert aspect in deployed
                assert np.array_equal(run_filter(workload), expected)
                assert farm.coordinator.split_calls == 1
        # context exit undeploys the *current* module set cleanly
        assert not default_weaver.deployed

    def test_unplug_concurrency_makes_calls_synchronous(self):
        workload = SieveWorkload(MAX, PACKS)
        conc = concurrency_module(WORK, WORK)
        comp = Composition(
            "unplug",
            [farm_module(workload.farm_splitter(3), CREATION, WORK), conc],
        )
        async_aspect = conc.async_aspect
        expected = expected_sieve_output(MAX)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[PrimeFilter]):
                pf = PrimeFilter(2, workload.sqrt)
                first = pf.filter(workload.candidates)
                if isinstance(first, Future):
                    first = first.result()
                assert async_aspect.spawned_calls > 0  # async while plugged
                spawned = async_aspect.spawned_calls
                comp.unplug("concurrency")
                second = pf.filter(workload.candidates)
                assert not isinstance(second, Future)  # synchronous now
                assert async_aspect.spawned_calls == spawned  # no new spawns
                assert np.array_equal(np.sort(np.asarray(first)), expected)
                assert np.array_equal(np.sort(np.asarray(second)), expected)

    def test_exchange_recompiles_only_matching_shadows(self):
        workload = SieveWorkload(MAX, PACKS)

        class Bystander:
            def untouched(self):
                return "plain"

        comp = Composition(
            "targeted",
            [farm_module(workload.farm_splitter(2), CREATION, WORK,
                         name="partition")],
        )
        default_weaver.weave(Bystander)
        with comp.deployed(default_weaver, targets=[PrimeFilter]):
            stats = default_weaver.plan_stats
            bystander_before = stats.count(Bystander, "untouched")
            work_before = stats.count(PrimeFilter, "filter")
            comp.exchange(
                "partition",
                farm_module(workload.farm_splitter(3), CREATION, WORK,
                            name="partition"),
            )
            # the work shadow recompiled (undeploy + redeploy), the
            # unrelated class did not
            assert stats.count(PrimeFilter, "filter") > work_before
            assert stats.count(Bystander, "untouched") == bystander_before

    def test_initialization_chain_follows_the_swap(self):
        workload = SieveWorkload(MAX, PACKS)
        comp = Composition(
            "init-swap",
            [farm_module(workload.farm_splitter(2), CREATION, WORK,
                         name="partition")],
        )
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[PrimeFilter]):
                farm_aspect = comp.module("partition").coordinator
                PrimeFilter(2, workload.sqrt)
                assert len(farm_aspect.workers) == 2
                replacement = farm_module(
                    workload.farm_splitter(4), CREATION, WORK, name="partition"
                )
                comp.exchange("partition", replacement)
                PrimeFilter(2, workload.sqrt)
                assert len(replacement.coordinator.workers) == 4
                # init shadow chain now holds only the new aspect
                entries, _ = default_weaver.chain(
                    PrimeFilter, "__init__", JoinPointKind.INITIALIZATION
                )
                aspects = {entry.aspect for entry in entries}
                assert replacement.coordinator in aspects
                assert farm_aspect not in aspects
