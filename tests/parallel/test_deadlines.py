"""Per-ticket deadlines: expiry mid-pipeline-forward and
mid-heartbeat-exchange unwinds the ticket (collector cancelled, piece
dropped before the next hop / worker) while the deployed workers keep
serving the next call — plus the span-timeline export (``app.trace``)."""

from __future__ import annotations

import time

import pytest

from repro.api import ParallelApp, StackSpec
from repro.errors import DeadlineExceeded
from repro.parallel import WorkSplitter


class SlowStage:
    """Pipeline stage that records who processed what, then dawdles."""

    #: (stage id, first payload value) per processed piece — the proof
    #: that an expired piece never reached the next stage
    seen: list = []
    delay = 0.05

    def run(self, values):
        SlowStage.seen.append((id(self), values[0]))
        time.sleep(SlowStage.delay)
        return [v + 1 for v in values]


class SlowExchange:
    """Heartbeat target whose boundary reads dawdle (the exchange is
    where the deadline will run out)."""

    reads = 0

    def __init__(self, size=4):
        self.size = size

    def step(self, iterations):
        return 1.0

    def get_boundary(self, side):
        SlowExchange.reads += 1
        time.sleep(0.05)
        return 0.0

    def set_boundary(self, side, data):
        return None


class SlowWorker:
    """Dynamic-farm worker that dawdles per piece."""

    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        time.sleep(0.03)
        return [v * 2 for v in values]


@pytest.fixture(autouse=True)
def reset_probes():
    SlowStage.seen = []
    SlowExchange.reads = 0
    yield


def pipeline_app(**admission):
    return ParallelApp(
        StackSpec(
            target=SlowStage,
            work="run",
            splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
            strategy="pipeline",
            backend="thread",
            **admission,
        )
    )


class TestPipelineDeadlines:
    def test_expiry_mid_forward_drops_the_piece_and_keeps_serving(self):
        app = pipeline_app()
        with app:
            app.start()
            # stage 1 alone takes ~50ms; the deadline drains while it
            # processes, so the piece must never reach stage 2
            future = app.submit([7], timeout=0.02)
            with pytest.raises(DeadlineExceeded) as info:
                future.result(timeout=10)
            # the exception carries the ticket's trace
            assert info.value.trace is not None
            assert any(
                span["name"] == "cancelled"
                for span in info.value.trace["spans"]
            )
            # the expired payload was processed by exactly ONE stage —
            # the forward advice unwound it instead of forwarding
            assert [v for (_, v) in SlowStage.seen].count(7) == 1
            # the stack is not poisoned: an undeadlined call completes
            assert app.submit([1]).result(timeout=10) == [3]
            assert [v for (_, v) in SlowStage.seen].count(1) == 1
            assert [v for (_, v) in SlowStage.seen].count(2) == 1
            assert app.in_flight == 0  # every ticket retired

    def test_spec_level_default_timeout_applies(self):
        app = pipeline_app(timeout=0.02)
        with app:
            app.start()
            with pytest.raises(DeadlineExceeded):
                app.submit([1]).result(timeout=10)
            # an explicit generous override beats the spec default
            assert app.submit([5], timeout=10).result(timeout=10) == [7]


class TestHeartbeatDeadlines:
    def test_expiry_mid_exchange_unwinds_and_workers_keep_serving(self):
        app = ParallelApp(
            StackSpec(
                target=SlowExchange,
                work="step",
                splitter=WorkSplitter(duplicates=3, combine=sum),
                strategy="heartbeat",
                backend="thread",
            )
        )
        with app:
            app.start(4)
            # compute is instant; the boundary gathers take ~50ms each,
            # so the budget dies inside the exchange phase
            future = app.submit(2, timeout=0.02)
            with pytest.raises(DeadlineExceeded, match="heartbeat"):
                future.result(timeout=10)
            reads_after_expiry = SlowExchange.reads
            # the exchange stopped early: 3 workers × 2 iterations would
            # be 8 boundary reads, the unwind cut it short
            assert reads_after_expiry < 8
            assert app.in_flight == 0
            # the same deployed blocks serve the next (undeadlined) call
            assert app.submit(1).result(timeout=30) == 3.0

    def test_trace_records_the_beat_timeline(self):
        app = ParallelApp(
            StackSpec(
                target=SlowExchange,
                work="step",
                splitter=WorkSplitter(duplicates=2, combine=sum),
                strategy="heartbeat",
                backend="thread",
            )
        )
        with app:
            app.start(4)
            future = app.submit(2)
            assert future.result(timeout=30) == 2.0
            trace = app.trace(future.admission.ticket_id)
        assert trace is not None
        names = [span["name"] for span in trace["spans"]]
        assert "compute[0]" in names and "exchange[1]" in names
        assert all(span["end"] is not None for span in trace["spans"])


class TestFarmAndDynamicFarmDeadlines:
    def test_dynamic_farm_drain_deadline_expires(self):
        app = ParallelApp(
            StackSpec(
                target=SlowWorker,
                work="bump",
                splitter=WorkSplitter(
                    duplicates=1,
                    split=lambda args, kwargs: [
                        # 4 sequential ~30ms pieces on one worker
                        *(CallPieceAt(i, args) for i in range(4))
                    ],
                    combine=lambda rs: rs,
                ),
                strategy="dynamic-farm",
                backend="thread",
            )
        )
        with app:
            app.start()
            with pytest.raises(DeadlineExceeded, match="draining"):
                app.submit([1], timeout=0.04).result(timeout=10)
            assert app.in_flight == 0
            # the resident dispatchers survive and serve the next call
            result = app.submit([2]).result(timeout=10)
            assert result == [[4]] * 4

    def test_farm_deadline_expires_between_pieces(self):
        app = ParallelApp(
            StackSpec(
                target=SlowWorker,
                work="bump",
                splitter=WorkSplitter(
                    duplicates=2,
                    split=lambda args, kwargs: [
                        *(CallPieceAt(i, args) for i in range(4))
                    ],
                    combine=lambda rs: rs,
                ),
                strategy="farm",
                backend="thread",
                concurrency=False,  # synchronous pieces: ~30ms each
            )
        )
        with app:
            app.start()
            with pytest.raises(DeadlineExceeded):
                app.submit([1], timeout=0.04).result(timeout=10)
            assert app.in_flight == 0
            assert app.submit([3]).result(timeout=10) == [[6]] * 4


def CallPieceAt(index, args):
    from repro.parallel.partition import CallPiece

    return CallPiece(index, args)


class TestSimVirtualTimeDeadlines:
    def test_deadline_measured_in_virtual_time_is_strict(self):
        # on the sim backend a deadline counts VIRTUAL seconds: a call
        # whose wire round-trip outlives a 1ns budget must fail even
        # though no cooperative boundary noticed the expiry in flight
        # (strict completion semantics — no late deliveries)
        from repro.cluster import paper_testbed
        from repro.sim import Simulator

        class Svc:
            def handle(self, x):
                return x + 1

        sim = Simulator()
        app = ParallelApp(
            StackSpec(
                target=Svc,
                work="handle",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy="farm",
                middleware="mpp",
                cluster=paper_testbed(sim),
                backend="sim",
            )
        )
        out: dict = {}

        def main():
            app.start()
            out["ok"] = app.submit(41).result()
            try:
                app.submit(1, timeout=1e-9).result()
            except DeadlineExceeded:
                out["expired"] = True
            out["after"] = app.submit(10).result()

        try:
            with app:
                sim.spawn(main, name="driver")
                sim.run()
        finally:
            sim.shutdown()
        assert out == {"ok": 42, "expired": True, "after": 11}


class TestTraces:
    def test_submit_trace_spans_cover_the_split_lifecycle(self):
        app = ParallelApp(
            StackSpec(
                target=SlowWorker,
                work="bump",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy="farm",
                backend="thread",
            )
        )
        with app:
            app.start()
            future = app.submit([1, 2])
            assert future.result(timeout=10) == [2, 4]
            ticket = future.admission.ticket_id
            trace = app.trace(ticket)
            assert trace is not None and trace["context_id"] == ticket
            names = [span["name"] for span in trace["spans"]]
            assert names[:2] == ["split", "dispatch"]
            assert "merge" in names
            assert trace["pieces"] == 1 and not trace["cancelled"]
            # traces() lists it too (retired into the bounded history)
            assert any(
                t["context_id"] == ticket for t in app.traces()
            )
            # unknown ids resolve to None, not an error
            assert app.trace(10**9) is None
