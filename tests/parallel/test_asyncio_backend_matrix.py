"""The overlap + admission + deadline matrix on the ASYNCIO backend:
all five partition strategies with ``async def`` servants whose awaits
live on the backend's event loop, overlapped submissions beyond
``max_in_flight`` observably blocking / failing / shedding per policy,
and per-call deadlines expiring *mid-await* (the loop clock is the
deadline clock, so ``wait_for`` cancels the servant's await exactly at
the budget).

Servants gate on an :class:`~repro.runtime.asyncbackend.AsyncioEvent`
(the backend's dual-face event): the test thread holds/opens it with
``set()`` while the parked servant coroutines ``await
gate.wait_async()`` — thousands could park without burning a thread.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ParallelApp, StackSpec
from repro.errors import (
    AdmissionRejected,
    CallShed,
    DeadlineExceeded,
)
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.parallel import WorkSplitter
from repro.parallel.partition import CallPiece

STRATEGIES = ["farm", "dynamic-farm", "pipeline", "heartbeat", "divide-conquer"]


def wait_until(cond, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


class GatedEcho:
    """Gated async doubler (farm / dynamic-farm / pipeline target)."""

    gate = None

    def __init__(self, tag=0):
        self.tag = tag

    async def bump(self, values):
        if GatedEcho.gate is not None:
            await GatedEcho.gate.wait_async()
        return [v * 2 for v in values]


class GatedBlock:
    """Gated async heartbeat target: unit residual + no-op halos."""

    gate = None

    def __init__(self, size=4):
        self.size = size

    async def step(self, iterations):
        if GatedBlock.gate is not None:
            await GatedBlock.gate.wait_async()
        return 1.0

    def get_boundary(self, side):
        return 0.0

    def set_boundary(self, side, data):
        return None


class GatedSummer:
    """Gated async divide-and-conquer target."""

    gate = None

    async def total(self, values):
        if GatedSummer.gate is not None:
            await GatedSummer.gate.wait_async()
        return sum(values)


_TARGETS = (GatedEcho, GatedBlock, GatedSummer)


def _dnc_options():
    return dict(
        should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
        divide=lambda args, kwargs: [
            CallPiece(0, (args[0][: len(args[0]) // 2],)),
            CallPiece(1, (args[0][len(args[0]) // 2:],)),
        ],
        merge=sum,
    )


class Case:
    """One strategy's target, spec fields, payloads, and expectations."""

    def __init__(self, strategy):
        self.strategy = strategy
        if strategy in ("farm", "dynamic-farm", "pipeline"):
            self.target, self.start_args = GatedEcho, ()
            self.fields = dict(
                target=GatedEcho,
                work="bump",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy=strategy,
            )
            factor = 4 if strategy == "pipeline" else 2
            self.payload = lambda i: ([i, i + 10],)
            self.expected = lambda i: [i * factor, (i + 10) * factor]
        elif strategy == "heartbeat":
            self.target, self.start_args = GatedBlock, (4,)
            self.fields = dict(
                target=GatedBlock,
                work="step",
                splitter=WorkSplitter(duplicates=2, combine=sum),
                strategy="heartbeat",
            )
            self.payload = lambda i: (2,)
            self.expected = lambda i: 2.0
        else:  # divide-conquer
            self.target, self.start_args = GatedSummer, ()
            self.fields = dict(
                target=GatedSummer,
                work="total",
                strategy="divide-conquer",
                strategy_options=_dnc_options(),
            )
            self.payload = lambda i: (list(range(i, i + 8)),)
            self.expected = lambda i: sum(range(i, i + 8))

    def asyncio_app(self, **admission):
        return ParallelApp(
            StackSpec(backend="asyncio", **self.fields, **admission)
        )


@pytest.fixture(autouse=True)
def clear_gates():
    for target in _TARGETS:
        target.gate = None
    yield
    for target in _TARGETS:
        target.gate = None


def arm_gate(case, app):
    """Install a closed dual-face gate on the case's target class;
    returns the opener."""
    gate = app.backend.make_event(name="test.gate")
    case.target.gate = gate
    return gate.set


class TestAsyncioPolicies:
    """Gate-held overlap with loop-task servants: the admission table
    is provably full while every servant await is parked on the gate."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fail_rejects_beyond_max_in_flight(self, strategy):
        case = Case(strategy)
        app = case.asyncio_app(max_in_flight=2, overflow="fail")
        with app:
            app.start(*case.start_args)
            open_gate = arm_gate(case, app)
            futures = [app.submit(*case.payload(i)) for i in range(2)]
            assert app.admitted == 2  # slots acquired synchronously
            with pytest.raises(AdmissionRejected, match="2 calls already"):
                app.submit(*case.payload(2))
            assert app.admission.rejected == 1
            open_gate()
            results = [f.result(timeout=20) for f in futures]
        assert results == [case.expected(i) for i in range(2)]
        assert wait_until(lambda: app.admitted == 0)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shed_oldest_cancels_oldest_in_flight_call(self, strategy):
        case = Case(strategy)
        app = case.asyncio_app(max_in_flight=1, overflow="shed-oldest")
        with app:
            app.start(*case.start_args)
            open_gate = arm_gate(case, app)
            oldest = app.submit(*case.payload(0))
            newest = app.submit(*case.payload(1))  # sheds `oldest`
            assert app.admission.shed_calls == 1
            assert oldest.admission.cancelled
            # the shed pulls the rug mid-await: the oldest call's future
            # fails with CallShed while the gate is still CLOSED — its
            # loop task was cancelled, not waited out
            with pytest.raises(CallShed):
                oldest.result(timeout=20)
            open_gate()
            assert newest.result(timeout=20) == case.expected(1)
        assert wait_until(lambda: app.admitted == 0)
        assert app.in_flight == 0  # shed tickets retired, none leaked

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_block_parks_submitter_until_a_slot_frees(self, strategy):
        case = Case(strategy)
        app = case.asyncio_app(max_in_flight=1, overflow="block")
        second: dict = {}
        with app:
            app.start(*case.start_args)
            open_gate = arm_gate(case, app)
            first = app.submit(*case.payload(0))

            def blocked_submitter():
                second["future"] = app.submit(*case.payload(1))

            thread = threading.Thread(target=blocked_submitter)
            thread.start()
            assert wait_until(lambda: app.admission.waiting == 1)
            assert "future" not in second  # genuinely parked
            open_gate()  # first call drains, hands its slot off
            thread.join(timeout=20)
            assert first.result(timeout=20) == case.expected(0)
            assert second["future"].result(timeout=20) == case.expected(1)
        assert app.admission.blocked == 1
        assert wait_until(lambda: app.admitted == 0)


class TestAsyncioOverlap:
    """Overlapped submissions genuinely coexist as event-loop tasks."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_overlapped_submissions_all_deliver(self, strategy):
        case = Case(strategy)
        app = case.asyncio_app(max_in_flight=None)
        with app:
            app.start(*case.start_args)
            open_gate = arm_gate(case, app)
            futures = [app.submit(*case.payload(i)) for i in range(3)]
            # every call holds a live admission slot while its servant
            # awaits are parked on the gate
            assert wait_until(lambda: app.admission.peak_admitted >= 3)
            # and the partition layer serves overlapped tickets
            assert wait_until(lambda: app.partition.peak_in_flight >= 2)
            open_gate()
            results = [f.result(timeout=30) for f in futures]
        assert results == [case.expected(i) for i in range(3)]
        assert wait_until(lambda: app.admitted == 0)

    def test_awaits_overlap_on_the_loop(self):
        # the point of the backend: a farm split's piece awaits run
        # CONCURRENTLY as loop tasks, not one thread per in-flight call
        case = Case("farm")
        app = case.asyncio_app()
        with app:
            app.start()
            open_gate = arm_gate(case, app)
            futures = [app.submit(*case.payload(i)) for i in range(4)]
            assert wait_until(lambda: app.backend.live_tasks >= 2)
            open_gate()
            for i, future in enumerate(futures):
                assert future.result(timeout=20) == case.expected(i)
        assert app.backend.peak_tasks >= 2
        assert wait_until(lambda: app.backend.live_tasks == 0)

    def test_results_route_to_their_own_call(self):
        case = Case("farm")
        app = case.asyncio_app()
        with app:
            app.start()
            futures = [app.submit(*case.payload(i)) for i in range(8)]
            for i, future in enumerate(futures):
                assert future.result(timeout=20) == case.expected(i)


class TestAsyncioDeadlines:
    """Per-call deadlines measured on the LOOP clock expire mid-await:
    ``asyncio.wait_for`` cancels the parked servant coroutine, the
    ticket expires with its trace, and the deployment keeps serving."""

    @pytest.mark.parametrize("strategy", ["farm", "dynamic-farm", "pipeline"])
    def test_deadline_expires_mid_await(self, strategy):
        case = Case(strategy)
        app = case.asyncio_app()
        with app:
            app.start(*case.start_args)
            open_gate = arm_gate(case, app)
            doomed = app.submit(*case.payload(0), timeout=0.2)
            # the gate never opens for this call: only the loop-clock
            # wait_for can unwind it
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=20)
            assert app.backend.tasks_expired >= 1
            open_gate()
            follow_up = app.submit(*case.payload(1))
            assert follow_up.result(timeout=20) == case.expected(1)
        assert wait_until(lambda: app.admitted == 0)

    def test_deadline_trace_names_the_await(self):
        case = Case("farm")
        app = case.asyncio_app()
        with app:
            app.start()
            open_gate = arm_gate(case, app)
            doomed = app.submit(*case.payload(0), timeout=0.2)
            with pytest.raises(DeadlineExceeded) as err:
                doomed.result(timeout=20)
            assert err.value.trace is not None
            assert "awaiting an async servant" in str(err.value)
            open_gate()

    def test_deadline_clock_is_the_loop_clock(self):
        case = Case("farm")
        app = case.asyncio_app()
        assert abs(app.backend.now() - app.backend.loop.time()) < 0.5


class TestAsyncioFaultMatrix:
    """The fault axis at the ``"loop"`` site: every strategy, retry
    armed, absorbs a first-task ``raise_in_piece`` / ``kill_worker`` (a
    loop task dies before its await) and a ``drop_reply`` (the servant
    coroutine ran to completion, its value is discarded)."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize(
        "fault", [None, "kill_worker", "drop_reply", "raise_in_piece"]
    )
    def test_strategy_completes_under_fault(self, strategy, fault):
        schedule = (
            FaultSchedule(
                [FaultEvent(fault, site="loop", on_call=1)],
                name=f"{strategy}-{fault}",
            )
            if fault
            else None
        )
        case = Case(strategy)
        app = case.asyncio_app(
            faults=schedule, retry=RetryPolicy(max_attempts=3)
        )
        with app:
            app.start(*case.start_args)
            futures = [app.submit(*case.payload(i)) for i in range(2)]
            results = [f.result(timeout=30) for f in futures]
        assert results == [case.expected(i) for i in range(2)]
        assert wait_until(lambda: app.admitted == 0)
        assert app.in_flight == 0
        if schedule is not None:
            assert schedule.fired_count() >= 1


class TestAsyncioOneway:
    """Native fire-and-forget: no middleware, the loop is the
    transport — a oneway submit resolves to None immediately while the
    detached task runs to completion."""

    def test_native_oneway_farm_pack(self):
        done = []

        class Sink:
            async def note(self, x):
                done.append(x)

        app = ParallelApp(
            StackSpec(
                target=Sink,
                work="note",
                strategy="none",
                backend="asyncio",
                oneway=("note",),
            )
        )
        with app:
            app.start()
            group = app.map(range(4), pack=True, oneway=True)
            assert group.results() == [None] * 4
            assert wait_until(lambda: sorted(done) == [0, 1, 2, 3])
