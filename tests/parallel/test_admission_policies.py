"""Admission control end to end: overlapped submissions beyond
``max_in_flight`` observably block / fail / shed per policy, on all five
partition strategies and both execution backends.

Thread-backend tests hold every in-flight call on a class gate so the
table is provably full when the policy fires; sim-backend tests rely on
the driver process submitting without yielding (slots are acquired
synchronously in ``submit``), which makes the overflow deterministic
without gates.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ParallelApp, StackSpec
from repro.cluster import paper_testbed
from repro.errors import AdmissionRejected, CallShed
from repro.parallel import WorkSplitter
from repro.parallel.partition import CallPiece
from repro.sim import Simulator

STRATEGIES = ["farm", "dynamic-farm", "pipeline", "heartbeat", "divide-conquer"]


def wait_until(cond, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


class Echo:
    """Gated doubling worker (farm / dynamic-farm / pipeline target)."""

    gate: threading.Event | None = None

    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        if Echo.gate is not None:
            Echo.gate.wait(5)
        return [v * 2 for v in values]


class Block:
    """Gated heartbeat target: unit residual + no-op halo accessors."""

    gate: threading.Event | None = None

    def __init__(self, size=4):
        self.size = size

    def step(self, iterations):
        if Block.gate is not None:
            Block.gate.wait(5)
        return 1.0

    def get_boundary(self, side):
        return 0.0

    def set_boundary(self, side, data):
        return None


class Summer:
    """Gated divide-and-conquer target."""

    gate: threading.Event | None = None

    def total(self, values):
        if Summer.gate is not None:
            Summer.gate.wait(5)
        return sum(values)


def _dnc_options():
    return dict(
        should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
        divide=lambda args, kwargs: [
            CallPiece(0, (args[0][: len(args[0]) // 2],)),
            CallPiece(1, (args[0][len(args[0]) // 2:],)),
        ],
        merge=sum,
    )


class Case:
    """One strategy's target, spec fields, payloads, and expectations."""

    def __init__(self, strategy):
        self.strategy = strategy
        if strategy in ("farm", "dynamic-farm", "pipeline"):
            self.target, self.start_args = Echo, ()
            self.fields = dict(
                target=Echo,
                work="bump",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy=strategy,
            )
            factor = 4 if strategy == "pipeline" else 2
            self.payload = lambda i: ([i, i + 10],)
            self.expected = lambda i: [i * factor, (i + 10) * factor]
        elif strategy == "heartbeat":
            self.target, self.start_args = Block, (4,)
            self.fields = dict(
                target=Block,
                work="step",
                splitter=WorkSplitter(duplicates=2, combine=sum),
                strategy="heartbeat",
            )
            self.payload = lambda i: (2,)
            self.expected = lambda i: 2.0
        else:  # divide-conquer
            self.target, self.start_args = Summer, ()
            self.fields = dict(
                target=Summer,
                work="total",
                strategy="divide-conquer",
                strategy_options=_dnc_options(),
            )
            self.payload = lambda i: (list(range(i, i + 8)),)
            self.expected = lambda i: sum(range(i, i + 8))

    def thread_app(self, **admission):
        return ParallelApp(
            StackSpec(backend="thread", **self.fields, **admission)
        )

    def sim_app(self, sim, **admission):
        fields = dict(self.fields)
        if self.strategy == "divide-conquer":
            # branch workers are call-time clones, not exported servants
            fields.update(backend="sim")
            app = ParallelApp(StackSpec(**fields, **admission))
        else:
            fields.update(
                middleware="mpp", cluster=paper_testbed(sim), backend="sim"
            )
            app = ParallelApp(StackSpec(**fields, **admission))
        return app


@pytest.fixture(autouse=True)
def clear_gates():
    Echo.gate = Block.gate = Summer.gate = None
    yield
    Echo.gate = Block.gate = Summer.gate = None


class TestThreadPolicies:
    """Gate-held overlap on real threads: the table is provably full."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fail_rejects_beyond_max_in_flight(self, strategy):
        case = Case(strategy)
        app = case.thread_app(max_in_flight=2, overflow="fail")
        case.target.gate = threading.Event()
        with app:
            app.start(*case.start_args)
            futures = [app.submit(*case.payload(i)) for i in range(2)]
            assert app.admitted == 2  # slots acquired synchronously
            with pytest.raises(AdmissionRejected, match="2 calls already"):
                app.submit(*case.payload(2))
            assert app.admission.rejected == 1
            case.target.gate.set()
            results = [f.result(timeout=10) for f in futures]
        assert results == [case.expected(i) for i in range(2)]
        assert wait_until(lambda: app.admitted == 0)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shed_oldest_cancels_oldest_in_flight_call(self, strategy):
        case = Case(strategy)
        app = case.thread_app(max_in_flight=1, overflow="shed-oldest")
        case.target.gate = threading.Event()
        with app:
            app.start(*case.start_args)
            oldest = app.submit(*case.payload(0))
            newest = app.submit(*case.payload(1))  # sheds `oldest`
            assert app.admission.shed_calls == 1
            assert oldest.admission.cancelled
            case.target.gate.set()
            assert newest.result(timeout=10) == case.expected(1)
            with pytest.raises(CallShed):
                oldest.result(timeout=10)
        assert wait_until(lambda: app.admitted == 0)
        assert app.in_flight == 0  # shed tickets retired, none leaked

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_block_parks_submitter_until_a_slot_frees(self, strategy):
        case = Case(strategy)
        app = case.thread_app(max_in_flight=1, overflow="block")
        case.target.gate = threading.Event()
        second: dict = {}
        with app:
            app.start(*case.start_args)
            first = app.submit(*case.payload(0))

            def blocked_submitter():
                second["future"] = app.submit(*case.payload(1))

            thread = threading.Thread(target=blocked_submitter)
            thread.start()
            assert wait_until(lambda: app.admission.waiting == 1)
            assert "future" not in second  # genuinely parked
            case.target.gate.set()  # first call drains, hands its slot off
            thread.join(timeout=10)
            assert first.result(timeout=10) == case.expected(0)
            assert second["future"].result(timeout=10) == case.expected(1)
        assert app.admission.blocked == 1
        assert wait_until(lambda: app.admitted == 0)


class TestReleaseOrdering:
    def test_slot_freed_before_the_future_resolves(self):
        # regression: the slot used to be released only AFTER
        # future.set_result, so a caller waking from result() could be
        # spuriously rejected while the finished call still held its
        # slot.  Release-before-resolve makes this loop deterministic.
        case = Case("farm")
        app = case.thread_app(max_in_flight=1, overflow="fail")
        with app:
            app.start()
            for i in range(8):
                future = app.submit(*case.payload(i))
                assert future.result(timeout=10) == case.expected(i)
                # the moment result() returns, the slot must be free
                follow_up = app.submit(*case.payload(i))
                assert follow_up.result(timeout=10) == case.expected(i)


class TestMapUnderAdmission:
    """map() reflects each unit's admission outcome in its own future —
    a rejected unit never strands the group or the in-flight work."""

    def test_rejected_map_units_fail_their_own_futures(self):
        case = Case("farm")
        app = case.thread_app(max_in_flight=2, overflow="fail")
        Echo.gate = threading.Event()
        with app:
            app.start(*case.start_args)
            group = app.map([case.payload(i)[0] for i in range(4)])
            assert len(group) == 4  # every handle reachable
            Echo.gate.set()
            results = []
            for i, future in enumerate(group):
                try:
                    results.append(future.result(timeout=10))
                except AdmissionRejected:
                    results.append("rejected")
            # the first two units dispatched; the overflow units were
            # rejected individually, not lost
            assert results[:2] == [case.expected(0), case.expected(1)]
            assert results[2:] == ["rejected", "rejected"]
        assert wait_until(lambda: app.admitted == 0)

    def test_rejected_packs_fail_their_own_futures(self):
        class Service:
            gate: threading.Event | None = None

            def __init__(self, tag=0):
                self.tag = tag

            def handle(self, x):
                if Service.gate is not None:
                    Service.gate.wait(5)
                return x + 1

        app = ParallelApp(
            StackSpec(
                target=Service,
                work="handle",
                splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
                strategy="farm",
                backend="thread",
                max_in_flight=1,
                overflow="fail",
            )
        )
        Service.gate = threading.Event()
        try:
            with app:
                app.start()
                group = app.map(list(range(4)), pack=2)  # 2 packs, 1 slot
                assert len(group) == 4
                Service.gate.set()
                outcomes = []
                for future in group:
                    try:
                        outcomes.append(future.result(timeout=10))
                    except AdmissionRejected:
                        outcomes.append("rejected")
                assert outcomes == [1, 2, "rejected", "rejected"]
        finally:
            Service.gate = None


class TestSimPolicies:
    """The same three policies on the simulated cluster: slots are
    acquired synchronously by the (non-yielding) driver, so overflow is
    deterministic without gates."""

    def _drive(self, case, policy, body):
        sim = Simulator()
        app = case.sim_app(
            sim,
            max_in_flight=1 if policy != "fail" else 2,
            overflow=policy,
        )
        driver_sim = app.sim if app.spec.cluster is None else sim
        out: dict = {}
        try:
            with app:
                driver_sim.spawn(lambda: body(app, out), name="admission-driver")
                driver_sim.run()
        finally:
            driver_sim.shutdown()
            if driver_sim is not sim:
                sim.shutdown()
        return app, out

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fail_rejects_beyond_max_in_flight(self, strategy):
        case = Case(strategy)

        def body(app, out):
            app.start(*case.start_args)
            futures = [app.submit(*case.payload(i)) for i in range(2)]
            try:
                app.submit(*case.payload(2))
            except AdmissionRejected:
                out["rejected"] = True
            out["results"] = [f.result() for f in futures]

        app, out = self._drive(case, "fail", body)
        assert out["rejected"]
        assert out["results"] == [case.expected(i) for i in range(2)]
        assert app.admission.rejected == 1

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shed_oldest_cancels_oldest_in_flight_call(self, strategy):
        case = Case(strategy)

        def body(app, out):
            app.start(*case.start_args)
            oldest = app.submit(*case.payload(0))
            newest = app.submit(*case.payload(1))
            out["newest"] = newest.result()
            try:
                oldest.result()
            except CallShed:
                out["shed"] = True

        app, out = self._drive(case, "shed-oldest", body)
        assert out["shed"]
        assert out["newest"] == case.expected(1)
        assert app.admission.shed_calls == 1

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_block_parks_submitter_until_a_slot_frees(self, strategy):
        case = Case(strategy)

        def body(app, out):
            app.start(*case.start_args)
            first = app.submit(*case.payload(0))
            # this admit parks the driver process until the first call
            # completes and hands its slot over
            second = app.submit(*case.payload(1))
            out["results"] = [first.result(), second.result()]

        app, out = self._drive(case, "block", body)
        assert out["results"] == [case.expected(i) for i in range(2)]
        assert app.admission.blocked == 1
        assert app.admission.peak_admitted == 1  # never two slots at once
