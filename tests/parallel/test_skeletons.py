"""The parallelise() facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aop.weaver import default_weaver
from repro.apps.primes import PrimeFilter, SieveWorkload, expected_sieve_output
from repro.cluster import paper_testbed
from repro.errors import DeploymentError
from repro.middleware.context import use_node
from repro.parallel.skeletons import MIDDLEWARES, STRATEGIES, parallelise
from repro.runtime import Future, SimBackend, ThreadBackend, use_backend
from repro.sim import Simulator

MAX = 10_000
PACKS = 4


class TestParalleliseValidation:
    def test_strategy_and_middleware_catalogues(self):
        assert "farm" in STRATEGIES and "pipeline" in STRATEGIES
        assert "rmi" in MIDDLEWARES

    def test_unknown_strategy_rejected(self):
        workload = SieveWorkload(MAX, PACKS)
        with pytest.raises(DeploymentError):
            parallelise(
                PrimeFilter,
                workload.farm_splitter(2),
                "initialization(PrimeFilter.new(..))",
                "call(PrimeFilter.filter(..))",
                strategy="fractal",
            )

    def test_middleware_needs_cluster(self):
        workload = SieveWorkload(MAX, PACKS)
        with pytest.raises(DeploymentError):
            parallelise(
                PrimeFilter,
                workload.farm_splitter(2),
                "initialization(PrimeFilter.new(..))",
                "call(PrimeFilter.filter(..))",
                middleware="rmi",
            )


class TestParalleliseThreads:
    @pytest.mark.parametrize("strategy", ["farm", "pipeline", "dynamic-farm"])
    def test_strategies_produce_correct_primes(self, strategy):
        workload = SieveWorkload(MAX, PACKS)
        splitter = (
            workload.pipeline_splitter(3)
            if strategy == "pipeline"
            else workload.farm_splitter(3)
        )
        stack = parallelise(
            PrimeFilter,
            splitter,
            "initialization(PrimeFilter.new(..))",
            "call(PrimeFilter.filter(..))",
            strategy=strategy,
        )
        with use_backend(ThreadBackend()):
            with stack:
                pf = PrimeFilter(2, workload.sqrt)
                result = pf.filter(workload.candidates)
                if isinstance(result, Future):
                    result = result.result()
        assert np.array_equal(
            np.sort(np.asarray(result)), expected_sieve_output(MAX)
        )

    def test_describe_mentions_concerns(self):
        workload = SieveWorkload(MAX, PACKS)
        stack = parallelise(
            PrimeFilter,
            workload.farm_splitter(2),
            "initialization(PrimeFilter.new(..))",
            "call(PrimeFilter.filter(..))",
        )
        text = stack.describe()
        assert "partition" in text and "concurrency" in text

    def test_dynamic_farm_does_not_add_concurrency_module(self):
        workload = SieveWorkload(MAX, PACKS)
        stack = parallelise(
            PrimeFilter,
            workload.farm_splitter(2),
            "initialization(PrimeFilter.new(..))",
            "call(PrimeFilter.filter(..))",
            strategy="dynamic-farm",
        )
        names = [m.name for m in stack.composition.modules]
        assert "concurrency" not in names


class TestParalleliseSim:
    @pytest.mark.parametrize("middleware", ["rmi", "mpp"])
    def test_distributed_facade_on_simulator(self, middleware):
        sim = Simulator()
        cluster = paper_testbed(sim)
        workload = SieveWorkload(MAX, PACKS)
        stack = parallelise(
            PrimeFilter,
            workload.farm_splitter(3),
            "initialization(PrimeFilter.new(..))",
            "call(PrimeFilter.filter(..))",
            middleware=middleware,
            cluster=cluster,
        )
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                pf = PrimeFilter(2, workload.sqrt)
                result = pf.filter(workload.candidates)
                if isinstance(result, Future):
                    result = result.result()
                out["primes"] = np.sort(np.asarray(result))

        stack.deploy()
        try:
            sim.spawn(main)
            sim.run()
        finally:
            stack.undeploy()
            stack.shutdown()
            sim.shutdown()
        assert np.array_equal(out["primes"], expected_sieve_output(MAX))
        assert stack.middleware.calls >= PACKS
