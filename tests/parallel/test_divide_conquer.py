"""Divide-and-conquer partition: object creation at call interception."""

from __future__ import annotations

import random

import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.errors import AdviceError
from repro.parallel import (
    Composition,
    DivideAndConquerAspect,
    concurrency_module,
    divide_and_conquer_module,
)
from repro.parallel.partition import CallPiece
from repro.runtime import ThreadBackend, use_backend

THRESHOLD = 8


def make_sorter():
    class Sorter:
        """Core functionality: a plain insertion sort (fast under the
        threshold; the partition supplies the divide/merge logic)."""

        def __init__(self):
            self.sorted_batches = 0

        def sort(self, values):
            self.sorted_batches += 1
            out = list(values)
            for i in range(1, len(out)):
                key = out[i]
                j = i - 1
                while j >= 0 and out[j] > key:
                    out[j + 1] = out[j]
                    j -= 1
                out[j + 1] = key
            return out

    return Sorter


def merge_sorted(results):
    """Standard two-way merge folded over the branch results."""
    merged = results[0]
    for other in results[1:]:
        out = []
        i = j = 0
        while i < len(merged) and j < len(other):
            if merged[i] <= other[j]:
                out.append(merged[i])
                i += 1
            else:
                out.append(other[j])
                j += 1
        out.extend(merged[i:])
        out.extend(other[j:])
        merged = out
    return merged


def mergesort_module(name="dac"):
    return divide_and_conquer_module(
        should_divide=lambda args, kwargs, depth: len(args[0]) > THRESHOLD,
        divide=lambda args, kwargs: [
            CallPiece(0, (args[0][: len(args[0]) // 2],)),
            CallPiece(1, (args[0][len(args[0]) // 2 :],)),
        ],
        merge=merge_sorted,
        work="call(Sorter.sort(..))",
        name=name,
    )


class TestDivideAndConquer:
    def test_sorts_correctly_and_creates_branch_workers(self):
        Sorter = make_sorter()
        module = mergesort_module()
        comp = Composition("dac", [module])
        weave(Sorter)
        data = random.Random(42).sample(range(1000), 100)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Sorter]):
                sorter = Sorter()
                result = sorter.sort(data)
        aspect = module.coordinator
        assert result == sorted(data)
        # 100 elements, threshold 8 -> a real recursion tree unfolded
        assert aspect.divisions >= 7
        assert aspect.leaves >= 8
        # "perform object creations when intercepting method calls"
        assert aspect.workers_created == 2 * aspect.divisions
        assert len(aspect.branches) == aspect.workers_created
        # the original object only sorted nothing directly
        assert sorter.sorted_batches == 0

    def test_below_threshold_runs_directly(self):
        Sorter = make_sorter()
        module = mergesort_module()
        comp = Composition("dac", [module])
        weave(Sorter)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Sorter]):
                sorter = Sorter()
                result = sorter.sort([3, 1, 2])
        assert result == [1, 2, 3]
        assert module.coordinator.divisions == 0
        assert sorter.sorted_batches == 1

    def test_composes_with_concurrency(self):
        Sorter = make_sorter()
        module = mergesort_module()
        comp = Composition(
            "dac-mt",
            [module, concurrency_module("call(Sorter.sort(..))")],
        )
        weave(Sorter)
        data = random.Random(7).sample(range(5000), 300)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Sorter]):
                result = Sorter().sort(data)
        assert result == sorted(data)

    def test_max_depth_bounds_recursion(self):
        Sorter = make_sorter()
        module = divide_and_conquer_module(
            should_divide=lambda args, kwargs, depth: True,  # divide forever
            divide=lambda args, kwargs: [
                CallPiece(0, (args[0][: max(1, len(args[0]) // 2)],)),
                CallPiece(1, (args[0][max(1, len(args[0]) // 2) :],)),
            ],
            merge=merge_sorted,
            work="call(Sorter.sort(..))",
            max_depth=3,
        )
        comp = Composition("bounded", [module])
        weave(Sorter)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Sorter]):
                result = Sorter().sort([5, 4, 3, 2, 1, 0])
        assert result == [0, 1, 2, 3, 4, 5]

    def test_single_piece_division_degrades_to_leaf(self):
        Sorter = make_sorter()
        module = divide_and_conquer_module(
            should_divide=lambda args, kwargs, depth: True,
            divide=lambda args, kwargs: [CallPiece(0, args)],
            merge=lambda results: results[0],
            work="call(Sorter.sort(..))",
        )
        comp = Composition("degenerate", [module])
        weave(Sorter)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Sorter]):
                assert Sorter().sort([2, 1]) == [1, 2]

    def test_invalid_max_depth(self):
        with pytest.raises(AdviceError):
            DivideAndConquerAspect(
                should_divide=lambda a, k, d: False,
                divide=lambda a, k: [],
                merge=lambda r: r,
                work="call(X.f(..))",
                max_depth=0,
            )

    def test_custom_worker_factory(self):
        Sorter = make_sorter()
        made = []

        def factory(prototype):
            worker = type(prototype)()
            made.append(worker)
            return worker

        module = divide_and_conquer_module(
            should_divide=lambda args, kwargs, depth: len(args[0]) > 2,
            divide=lambda args, kwargs: [
                CallPiece(0, (args[0][:2],)),
                CallPiece(1, (args[0][2:],)),
            ],
            merge=merge_sorted,
            work="call(Sorter.sort(..))",
            make_worker=factory,
        )
        comp = Composition("custom", [module])
        weave(Sorter)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Sorter]):
                assert Sorter().sort([4, 3, 2, 1]) == [1, 2, 3, 4]
        assert len(made) == module.coordinator.workers_created
