"""Concurrency and distribution aspects as units (on the simulator,
where interleavings are deterministic)."""

from __future__ import annotations

import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.cluster import paper_testbed
from repro.errors import RemoteError
from repro.middleware import (
    BlockPlacement,
    FixedPlacement,
    LeastLoaded,
    MppMiddleware,
    RandomPlacement,
    RmiMiddleware,
    RoundRobin,
    use_node,
)
from repro.parallel import (
    AsyncInvocationAspect,
    MppDistributionAspect,
    RmiDistributionAspect,
    SynchronisationAspect,
)
from repro.runtime import Future, SimBackend, use_backend
from repro.sim import Simulator


def make_worker():
    class Worker:
        def __init__(self, wid=0):
            self.wid = wid
            self.log = []

        def slow(self, label, duration):
            from repro.sim import current_simulator

            sim = current_simulator()
            self.log.append((label, "start", sim.now))
            sim.hold(duration)
            self.log.append((label, "end", sim.now))
            return label

        def boom(self):
            raise ValueError("kaboom")

    return Worker


def sim_main(fn):
    """Run fn as a simulated main process; returns its result."""
    sim = Simulator()
    backend = SimBackend(sim)
    out = {}

    def main():
        with use_backend(backend):
            out["result"] = fn(sim, backend)

    sim.spawn(main, name="main")
    sim.run()
    sim.shutdown()
    return out["result"]


class TestAsyncInvocation:
    def test_calls_overlap_in_simulated_time(self):
        Worker = make_worker()
        weave(Worker)
        aspect = AsyncInvocationAspect(async_calls="call(Worker.slow(..))")

        def body(sim, backend):
            default_weaver.deploy(aspect)
            worker_a, worker_b = Worker(1), Worker(2)
            f1 = worker_a.slow("a", 2.0)
            f2 = worker_b.slow("b", 2.0)
            assert isinstance(f1, Future) and isinstance(f2, Future)
            assert f1.result() == "a" and f2.result() == "b"
            return sim.now

        # two 2-second calls overlapping -> 2 simulated seconds total
        assert sim_main(body) == pytest.approx(2.0)
        assert aspect.spawned_calls == 2

    def test_exception_travels_through_future(self):
        Worker = make_worker()
        weave(Worker)
        aspect = AsyncInvocationAspect(async_calls="call(Worker.boom(..))")

        def body(sim, backend):
            default_weaver.deploy(aspect)
            future = Worker().boom()
            with pytest.raises(ValueError, match="kaboom"):
                future.result()
            return True

        assert sim_main(body)


class TestSynchronisation:
    def test_per_target_serialisation(self):
        Worker = make_worker()
        weave(Worker)
        async_aspect = AsyncInvocationAspect(async_calls="call(Worker.slow(..))")
        sync_aspect = SynchronisationAspect(guarded_calls="call(Worker.slow(..))")

        def body(sim, backend):
            default_weaver.deploy(async_aspect)
            default_weaver.deploy(sync_aspect)
            worker = Worker()
            futures = [worker.slow(i, 1.0) for i in range(3)]
            for f in futures:
                f.result()
            return sim.now, worker.log

        total, log = sim_main(body)
        # same target -> serialized: 3 seconds
        assert total == pytest.approx(3.0)
        # no interleaving: each start follows the previous end
        starts = [t for (_, phase, t) in log if phase == "start"]
        ends = [t for (_, phase, t) in log if phase == "end"]
        assert all(s >= e for s, e in zip(starts[1:], ends))

    def test_different_targets_not_serialised(self):
        Worker = make_worker()
        weave(Worker)
        async_aspect = AsyncInvocationAspect(async_calls="call(Worker.slow(..))")
        sync_aspect = SynchronisationAspect(guarded_calls="call(Worker.slow(..))")

        def body(sim, backend):
            default_weaver.deploy(async_aspect)
            default_weaver.deploy(sync_aspect)
            futures = [Worker(i).slow(i, 1.0) for i in range(3)]
            for f in futures:
                f.result()
            return sim.now

        assert sim_main(body) == pytest.approx(1.0)


class TestDistributionAspects:
    def make_target(self):
        class Remote:
            def __init__(self, tag):
                self.tag = tag

            def work(self, x):
                return (self.tag, x)

            def fail(self):
                raise RuntimeError("remote boom")

        return Remote

    def test_rmi_aspect_creates_named_servants_and_redirects(self):
        Remote = self.make_target()
        weave(Remote)
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)
        aspect = RmiDistributionAspect(
            rmi,
            RoundRobin(offset=1),
            remote_new="initialization(Remote.new(..))",
            remote_calls="call(Remote.work(..)) || call(Remote.fail(..))",
        )
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                default_weaver.deploy(aspect)
                obj = Remote("alpha")
                out["result"] = obj.work(42)
                out["names"] = rmi.registry.names()
                out["ref"] = aspect.ref_of(obj)
                with pytest.raises(RemoteError):
                    obj.fail()
                out["errors"] = aspect.remote_errors

        sim.spawn(main)
        sim.run()
        rmi.shutdown()
        sim.shutdown()
        assert out["result"] == ("alpha", 42)
        assert out["names"] == ("PS1",)
        assert out["ref"].node_id == 1  # RoundRobin(offset=1)
        assert out["errors"] == 1
        assert aspect.redirected == 2

    def test_servant_is_a_state_copy(self):
        Remote = self.make_target()
        weave(Remote)
        sim = Simulator()
        cluster = paper_testbed(sim)
        rmi = RmiMiddleware(cluster)
        aspect = RmiDistributionAspect(
            rmi,
            remote_new="initialization(Remote.new(..))",
            remote_calls="call(Remote.work(..))",
        )
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                default_weaver.deploy(aspect)
                obj = Remote("original")
                obj.tag = "mutated-locally"  # must NOT affect the servant
                out["result"] = obj.work(1)

        sim.spawn(main)
        sim.run()
        rmi.shutdown()
        sim.shutdown()
        assert out["result"] == ("original", 1)

    def test_mpp_oneway_methods(self):
        Remote = self.make_target()
        weave(Remote)
        sim = Simulator()
        cluster = paper_testbed(sim)
        mpp = MppMiddleware(cluster)
        aspect = MppDistributionAspect(
            mpp,
            remote_new="initialization(Remote.new(..))",
            remote_calls="call(Remote.work(..))",
            oneway=("work",),
        )
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                default_weaver.deploy(aspect)
                obj = Remote("x")
                out["result"] = obj.work(5)  # oneway -> None
                sim.hold(1.0)

        sim.spawn(main)
        sim.run()
        servant_result = out["result"]
        mpp.shutdown()
        sim.shutdown()
        assert servant_result is None
        assert mpp.oneway_calls == 1


class TestPlacementPolicies:
    def test_round_robin_cycles(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        policy = RoundRobin()
        chosen = [policy.choose(cluster, i).node_id for i in range(9)]
        assert chosen == [0, 1, 2, 3, 4, 5, 6, 0, 1]

    def test_round_robin_offset(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        policy = RoundRobin(offset=2)
        assert policy.choose(cluster, 0).node_id == 2

    def test_random_deterministic_under_seed(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        a = RandomPlacement(seed=7)
        b = RandomPlacement(seed=7)
        seq_a = [a.choose(cluster, i).node_id for i in range(10)]
        seq_b = [b.choose(cluster, i).node_id for i in range(10)]
        assert seq_a == seq_b
        a.reset()
        assert [a.choose(cluster, i).node_id for i in range(10)] == seq_a

    def test_block_placement(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        policy = BlockPlacement(block=3)
        assert [policy.choose(cluster, i).node_id for i in range(7)] == [
            0, 0, 0, 1, 1, 1, 2,
        ]

    def test_block_placement_wraps(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        policy = BlockPlacement(block=1)
        assert policy.choose(cluster, 8).node_id == 1

    def test_least_loaded_follows_resident_objects(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        policy = LeastLoaded()
        first = policy.choose(cluster, 0)
        assert first.node_id == 0
        first.place(object())
        assert policy.choose(cluster, 1).node_id == 1

    def test_fixed_placement(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        assert FixedPlacement(3).choose(cluster, 5).node_id == 3
