"""Optimisation aspects: thread pool, packing, caching, replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.errors import AdviceError
from repro.parallel import (
    AsyncInvocationAspect,
    CommunicationPackingAspect,
    Composition,
    Concern,
    ObjectCacheAspect,
    ParallelModule,
    PooledSpawner,
    ReplicationAspect,
    SpawnPerCall,
    ThreadPoolAspect,
    farm_module,
)
from repro.parallel.partition import CallPiece, WorkSplitter
from repro.runtime import Future, SimBackend, ThreadBackend, use_backend
from repro.sim import Simulator


class TestThreadPoolAspect:
    def test_swaps_and_restores_spawner(self):
        async_aspect = AsyncInvocationAspect(async_calls="call(X.f(..))")
        assert isinstance(async_aspect.spawner, SpawnPerCall)
        pool_aspect = ThreadPoolAspect(async_aspect, size=4)
        default_weaver.deploy(pool_aspect)
        assert isinstance(async_aspect.spawner, PooledSpawner)
        assert async_aspect.spawner.size == 4
        default_weaver.undeploy(pool_aspect)
        assert isinstance(async_aspect.spawner, SpawnPerCall)

    def test_pool_bounds_concurrency_in_sim(self):
        class Job:
            def run(self, duration):
                from repro.sim import current_simulator

                current_simulator().hold(duration)
                return duration

        weave(Job)
        async_aspect = AsyncInvocationAspect(async_calls="call(Job.run(..))")
        pool_aspect = ThreadPoolAspect(async_aspect, size=2)
        sim = Simulator()
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend):
                default_weaver.deploy(async_aspect)
                default_weaver.deploy(pool_aspect)
                job = Job()
                futures = [job.run(1.0) for _ in range(4)]
                for f in futures:
                    f.result()
                out["t"] = sim.now

        sim.spawn(main)
        sim.run()
        default_weaver.undeploy(pool_aspect)
        sim.shutdown()
        # 4 one-second jobs through 2 workers -> 2 simulated seconds
        assert out["t"] == pytest.approx(2.0)
        assert pool_aspect.pool is None  # stopped on undeploy

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            PooledSpawner(0)


class TestCommunicationPacking:
    def make_farm(self, factor):
        class Adder:
            def __init__(self):
                self.calls = 0

            def add(self, values):
                self.calls += 1
                return [v + 1 for v in values]

        weave(Adder)

        def split(args, kwargs):
            (values,) = args
            return [CallPiece(i, ([v],)) for i, v in enumerate(values)]

        def combine(results):
            return [v for r in results for v in r]

        def merge(pieces):
            merged = [v for p in pieces for v in p.args[0]]
            return CallPiece(pieces[0].index, (merged,))

        splitter = WorkSplitter(
            duplicates=2, split=split, combine=combine, merge_pieces=merge
        )
        module = farm_module(
            splitter, "initialization(Adder.new(..))", "call(Adder.add(..))"
        )
        comp = Composition("farm", [module])
        packing = CommunicationPackingAspect(module.coordinator, factor)
        comp.plug(ParallelModule("packing", Concern.OPTIMISATION, [packing]))
        return Adder, comp, module.coordinator, packing

    def test_packing_reduces_messages(self):
        Adder, comp, farm, packing = self.make_farm(factor=3)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                adder = Adder()
                result = adder.add(list(range(6)))
        assert result == [v + 1 for v in range(6)]
        # 6 single-element pieces coalesced by 3 -> 2 calls
        assert sum(w.calls for w in farm.workers) == 2
        assert packing.packed_messages == 2

    def test_unplug_restores_split(self):
        Adder, comp, farm, packing = self.make_farm(factor=3)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                pass
            # after undeploy the splitter is back to per-element pieces
            pieces = farm.splitter.split(([1, 2, 3],), {})
            assert len(pieces) == 3

    def test_invalid_factor(self):
        with pytest.raises(AdviceError):
            CommunicationPackingAspect(object(), 0)


class TestBatchedPacking:
    """Batch-mode packing: packs dispatch through the compiled batched
    entry — one BatchJoinPoint per pack, no merge_pieces required."""

    def make_farm(self, factor, duplicates=2, batch=None, merge=False):
        class Adder:
            def __init__(self):
                self.calls = 0

            def add(self, values):
                self.calls += 1
                return [v + 1 for v in values]

        weave(Adder)

        def split(args, kwargs):
            (values,) = args
            return [CallPiece(i, ([v],)) for i, v in enumerate(values)]

        def combine(results):
            return [v for r in results for v in r]

        def merge_pieces(pieces):
            merged = [v for p in pieces for v in p.args[0]]
            return CallPiece(pieces[0].index, (merged,))

        splitter = WorkSplitter(
            duplicates=duplicates,
            split=split,
            combine=combine,
            merge_pieces=merge_pieces if merge else None,
        )
        module = farm_module(
            splitter, "initialization(Adder.new(..))", "call(Adder.add(..))"
        )
        comp = Composition("farm", [module])
        packing = CommunicationPackingAspect(
            module.coordinator, factor, batch=batch
        )
        comp.plug(ParallelModule("packing", Concern.OPTIMISATION, [packing]))
        return Adder, comp, module.coordinator, packing

    def test_batch_mode_is_default_without_merge_pieces(self):
        Adder, comp, farm, packing = self.make_farm(factor=3)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                adder = Adder()
                result = adder.add(list(range(6)))
        # combine sees per-ITEM results in original order (unlike merge
        # mode, which sees pack-granular results)
        assert result == [v + 1 for v in range(6)]
        assert packing.packed_messages == 2
        # the target method still ran once per item
        assert sum(w.calls for w in farm.workers) == 6

    def test_batch_pack_allocates_one_joinpoint(self):
        import repro.aop.plan as plan_mod
        from repro.aop.plan import BatchJoinPoint, JoinPoint

        counts = {"jp": 0, "batch": 0}

        class CountingJP(JoinPoint):
            __slots__ = ()

            def __init__(self, *args, **kwargs):
                counts["jp"] += 1
                super().__init__(*args, **kwargs)

        # the all-around plan allocates a _FusedJoinPoint via __new__
        # (no __init__ frame), so count allocations there
        class CountingFusedJP(plan_mod._FusedJoinPoint):
            __slots__ = ()

            def __new__(cls):
                counts["jp"] += 1
                return super().__new__(cls)

        class CountingBatchJP(BatchJoinPoint):
            __slots__ = ()

            def __init__(self, *args, **kwargs):
                counts["batch"] += 1
                super().__init__(*args, **kwargs)

        Adder, comp, farm, packing = self.make_farm(factor=4, batch=True)
        saved = (
            plan_mod.JoinPoint,
            plan_mod._FusedJoinPoint,
            plan_mod.BatchJoinPoint,
        )
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                adder = Adder()
                plan_mod.JoinPoint = CountingJP
                plan_mod._FusedJoinPoint = CountingFusedJP
                plan_mod.BatchJoinPoint = CountingBatchJP
                try:
                    result = adder.add(list(range(8)))
                finally:
                    (
                        plan_mod.JoinPoint,
                        plan_mod._FusedJoinPoint,
                        plan_mod.BatchJoinPoint,
                    ) = saved
        assert result == [v + 1 for v in range(8)]
        # 8 items / factor 4 -> 2 packs -> 2 BatchJoinPoints, plus the
        # single JoinPoint of the client's own split call
        assert counts["batch"] == 2
        assert counts["jp"] == 1

    def test_forced_batch_mode_beats_missing_merge_support(self):
        # a splitter WITH merge support can still opt into batch mode
        Adder, comp, farm, packing = self.make_farm(
            factor=2, batch=True, merge=True
        )
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                result = Adder().add(list(range(4)))
        assert result == [v + 1 for v in range(4)]
        assert sum(w.calls for w in farm.workers) == 4


class TestBatchedPipeline:
    """Packs traverse pipeline stages as single batched hops."""

    def test_pack_forwarded_batched_through_stages(self):
        from repro.parallel import pipeline_module

        class Stage:
            def __init__(self, offset=0):
                self.offset = offset
                self.calls = 0

            def work(self, value):
                self.calls += 1
                return value + self.offset + 1

        weave(Stage)

        def split(args, kwargs):
            (values,) = args
            return [CallPiece(i, (v,)) for i, v in enumerate(values)]

        splitter = WorkSplitter(
            duplicates=2,
            split=split,
            combine=lambda results: sorted(results),
            forward_args=lambda result, args, kwargs: ((result,), {}),
        )
        module = pipeline_module(
            splitter, "initialization(Stage.new(..))", "call(Stage.work(..))"
        )
        comp = Composition("pipe", [module])
        packing = CommunicationPackingAspect(module.coordinator, 2, batch=True)
        comp.plug(ParallelModule("packing", Concern.OPTIMISATION, [packing]))
        forward = module.aspects[1]
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Stage]):
                result = Stage().work([10, 20, 30, 40])
        # two stages, each +1 -> every item gains 2
        assert result == [12, 22, 32, 42]
        # 4 items / factor 2 -> 2 packs, each forwarded once (stage1 ->
        # stage2), batched: 2 forwards instead of 4
        assert forward.forwards == 2


class TestObjectCache:
    def make_service(self):
        class Service:
            def __init__(self):
                self.calls = 0

            def compute(self, x):
                self.calls += 1
                return x * 2

        weave(Service)
        return Service

    def test_cache_hits_skip_target(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(cached_calls="call(Service.compute(..))")
        default_weaver.deploy(cache)
        service = Service.__new__(Service)
        service.calls = 0
        assert service.compute(3) == 6
        assert service.compute(3) == 6
        assert service.compute(4) == 8
        assert service.calls == 2
        assert cache.hits == 1 and cache.misses == 2
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_per_target_mode(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(
            cached_calls="call(Service.compute(..))", per_target=True
        )
        default_weaver.deploy(cache)
        a, b = Service(), Service()
        a.compute(3)
        b.compute(3)  # different target -> miss
        assert cache.misses == 2

    def test_capacity_limit_evicts_lru(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(
            cached_calls="call(Service.compute(..))", max_entries=1
        )
        default_weaver.deploy(cache)
        service = Service()
        service.compute(1)
        service.compute(2)  # evicts 1 (LRU)
        service.compute(2)  # hit
        service.compute(1)  # evicted above -> recomputed
        assert service.calls == 3
        assert cache.hits == 1 and cache.misses == 3

    def test_lru_recency_order(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(
            cached_calls="call(Service.compute(..))", max_entries=2
        )
        default_weaver.deploy(cache)
        service = Service()
        service.compute(1)
        service.compute(2)
        service.compute(1)  # hit: 1 becomes most recently used
        service.compute(3)  # evicts 2, not 1
        service.compute(1)  # still cached
        service.compute(2)  # evicted -> recomputed
        assert service.calls == 4
        assert cache.hits == 2

    def test_clear_and_undeploy(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(cached_calls="call(Service.compute(..))")
        default_weaver.deploy(cache)
        service = Service()
        service.compute(1)
        cache.clear()
        service.compute(1)
        assert cache.misses == 2

    def test_pack_partial_hit_splits_and_reinterleaves(self):
        """Pack-8 with 50% already cached: ONE cache lookup for the
        pack, only the 4 misses reach the target (as a smaller pack),
        and the results come back in piece order."""
        from repro.aop.plan import batched_entry

        Service = self.make_service()
        cache = ObjectCacheAspect(cached_calls="call(Service.compute(..))")
        default_weaver.deploy(cache)
        service = Service()
        for x in (0, 2, 4, 6):  # warm half the pack
            service.compute(x)
        assert service.calls == 4 and cache.pack_lookups == 0
        entry = batched_entry(service, "compute")
        results = entry([((x,), {}) for x in range(8)])
        assert results == [x * 2 for x in range(8)]  # piece order
        assert cache.pack_lookups == 1  # exactly one lookup per pack
        assert service.calls == 8  # only the 4 misses recomputed
        assert cache.hits == 4 and cache.misses == 8

    def test_pack_full_hit_never_proceeds(self):
        from repro.aop.plan import batched_entry

        Service = self.make_service()
        cache = ObjectCacheAspect(cached_calls="call(Service.compute(..))")
        default_weaver.deploy(cache)
        service = Service()
        entry = batched_entry(service, "compute")
        assert entry([((x,), {}) for x in range(4)]) == [0, 2, 4, 6]
        calls_after_first = service.calls
        assert entry([((x,), {}) for x in range(4)]) == [0, 2, 4, 6]
        assert service.calls == calls_after_first  # fully cached pack
        assert cache.pack_lookups == 2

    def test_concurrent_memoisation_is_consistent(self):
        import threading

        Service = self.make_service()
        cache = ObjectCacheAspect(
            cached_calls="call(Service.compute(..))", max_entries=8
        )
        default_weaver.deploy(cache)
        service = Service()
        errors: list = []

        def worker():
            try:
                for _ in range(200):
                    for x in range(12):  # > max_entries: constant churn
                        assert service.compute(x) == x * 2
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.hits + cache.misses == 4 * 200 * 12


class TestReadReplica:
    def make_store(self):
        class Store:
            def __init__(self):
                self.data = {}
                self.reads = 0

            def get(self, key):
                self.reads += 1
                return self.data.get(key)

            def put(self, key, value):
                self.data[key] = value

        weave(Store)
        return Store

    def make_partition(self, *instances):
        from repro.parallel.partition.base import PartitionAspect

        partition = PartitionAspect.__new__(PartitionAspect)
        partition.managed = {}
        partition.instances = []
        for index, obj in enumerate(instances):
            partition.remember(obj, index)
        return partition

    def deploy(self, Store, partition, **kwargs):
        from repro.parallel import ReadReplicaAspect

        aspect = ReadReplicaAspect(
            partition,
            read_calls=f"call({Store.__name__}.get(..))",
            write_calls=f"call({Store.__name__}.put(..))",
            **kwargs,
        )
        default_weaver.deploy(aspect)
        return aspect

    def test_reads_served_by_local_replica(self):
        Store = self.make_store()
        store = Store()
        store.data["k"] = 1
        partition = self.make_partition(store)
        aspect = self.deploy(Store, partition)
        assert store.get("k") == 1
        # the live servant never saw the read: the replica did
        assert store.reads == 0
        assert aspect.local_reads == 1 and aspect.replica_builds == 1
        # replica is detached: a direct (unadvised) state change on the
        # servant is not visible until invalidation
        store.data["k"] = 2
        assert store.get("k") == 1
        aspect.invalidate(store)
        assert store.get("k") == 2
        assert aspect.invalidations == 1 and aspect.replica_builds == 2

    def test_write_through_invalidates(self):
        Store = self.make_store()
        store = Store()
        store.data["k"] = 1
        partition = self.make_partition(store)
        aspect = self.deploy(Store, partition)
        assert store.get("k") == 1
        store.put("k", 9)  # full chain + invalidation
        assert store.data["k"] == 9
        assert store.get("k") == 9  # rebuilt replica sees the write
        assert aspect.invalidations == 1

    def test_batched_reads_answered_as_pack(self):
        from repro.aop.plan import batched_entry

        Store = self.make_store()
        store = Store()
        store.data.update({i: i * 10 for i in range(6)})
        partition = self.make_partition(store)
        aspect = self.deploy(Store, partition)
        entry = batched_entry(store, "get")
        assert entry([((i,), {}) for i in range(6)]) == [
            i * 10 for i in range(6)
        ]
        assert store.reads == 0  # zero chain traversals hit the servant
        assert aspect.local_reads == 6 and aspect.replica_builds == 1

    def test_unmanaged_target_proceeds(self):
        Store = self.make_store()
        managed, stranger = Store(), Store()
        stranger.data["k"] = 7
        partition = self.make_partition(managed)
        aspect = self.deploy(Store, partition)
        assert stranger.get("k") == 7
        assert stranger.reads == 1  # served by the servant itself
        assert aspect.local_reads == 0

    def test_snapshot_rejects_unmanaged(self):
        Store = self.make_store()
        partition = self.make_partition()
        with pytest.raises(AdviceError):
            partition.snapshot(Store())


class TestReplication:
    def test_first_result_wins_in_sim(self):
        class Node:
            def __init__(self, delay):
                self.delay = delay

            def query(self, key):
                from repro.sim import current_simulator

                current_simulator().hold(self.delay)
                return (self.delay, key)

        weave(Node)

        # a fake partition exposing worker instances
        class FakePartition:
            pass

        partition = FakePartition()
        sim = Simulator()
        backend = SimBackend(sim)
        slow, fast = None, None
        out = {}

        def main():
            nonlocal slow, fast
            with use_backend(backend):
                slow = Node(5.0)
                fast = Node(1.0)
                partition.instances = [slow, fast]
                replication = ReplicationAspect(
                    partition, replicas=2, replicated_calls="call(Node.query(..))"
                )
                default_weaver.deploy(replication)
                out["result"] = slow.query("k")  # replica on fast node wins
                out["t"] = sim.now
                out["count"] = replication.replicated

        sim.spawn(main)
        sim.run()
        sim.shutdown()
        assert out["result"] == (1.0, "k")
        assert out["t"] == pytest.approx(1.0)
        assert out["count"] == 1

    def test_no_peers_proceeds_normally(self):
        class Node:
            def query(self, key):
                return key

        weave(Node)

        class FakePartition:
            instances = []

        replication = ReplicationAspect(
            FakePartition(), replicas=2, replicated_calls="call(Node.query(..))"
        )
        default_weaver.deploy(replication)
        assert Node().query("x") == "x"

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ReplicationAspect(object(), replicas=0)
