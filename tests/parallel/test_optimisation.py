"""Optimisation aspects: thread pool, packing, caching, replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.errors import AdviceError
from repro.parallel import (
    AsyncInvocationAspect,
    CommunicationPackingAspect,
    Composition,
    Concern,
    ObjectCacheAspect,
    ParallelModule,
    PooledSpawner,
    ReplicationAspect,
    SpawnPerCall,
    ThreadPoolAspect,
    farm_module,
)
from repro.parallel.partition import CallPiece, WorkSplitter
from repro.runtime import Future, SimBackend, ThreadBackend, use_backend
from repro.sim import Simulator


class TestThreadPoolAspect:
    def test_swaps_and_restores_spawner(self):
        async_aspect = AsyncInvocationAspect(async_calls="call(X.f(..))")
        assert isinstance(async_aspect.spawner, SpawnPerCall)
        pool_aspect = ThreadPoolAspect(async_aspect, size=4)
        default_weaver.deploy(pool_aspect)
        assert isinstance(async_aspect.spawner, PooledSpawner)
        assert async_aspect.spawner.size == 4
        default_weaver.undeploy(pool_aspect)
        assert isinstance(async_aspect.spawner, SpawnPerCall)

    def test_pool_bounds_concurrency_in_sim(self):
        class Job:
            def run(self, duration):
                from repro.sim import current_simulator

                current_simulator().hold(duration)
                return duration

        weave(Job)
        async_aspect = AsyncInvocationAspect(async_calls="call(Job.run(..))")
        pool_aspect = ThreadPoolAspect(async_aspect, size=2)
        sim = Simulator()
        backend = SimBackend(sim)
        out = {}

        def main():
            with use_backend(backend):
                default_weaver.deploy(async_aspect)
                default_weaver.deploy(pool_aspect)
                job = Job()
                futures = [job.run(1.0) for _ in range(4)]
                for f in futures:
                    f.result()
                out["t"] = sim.now

        sim.spawn(main)
        sim.run()
        default_weaver.undeploy(pool_aspect)
        sim.shutdown()
        # 4 one-second jobs through 2 workers -> 2 simulated seconds
        assert out["t"] == pytest.approx(2.0)
        assert pool_aspect.pool is None  # stopped on undeploy

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            PooledSpawner(0)


class TestCommunicationPacking:
    def make_farm(self, factor):
        class Adder:
            def __init__(self):
                self.calls = 0

            def add(self, values):
                self.calls += 1
                return [v + 1 for v in values]

        weave(Adder)

        def split(args, kwargs):
            (values,) = args
            return [CallPiece(i, ([v],)) for i, v in enumerate(values)]

        def combine(results):
            return [v for r in results for v in r]

        def merge(pieces):
            merged = [v for p in pieces for v in p.args[0]]
            return CallPiece(pieces[0].index, (merged,))

        splitter = WorkSplitter(
            duplicates=2, split=split, combine=combine, merge_pieces=merge
        )
        module = farm_module(
            splitter, "initialization(Adder.new(..))", "call(Adder.add(..))"
        )
        comp = Composition("farm", [module])
        packing = CommunicationPackingAspect(module.coordinator, factor)
        comp.plug(ParallelModule("packing", Concern.OPTIMISATION, [packing]))
        return Adder, comp, module.coordinator, packing

    def test_packing_reduces_messages(self):
        Adder, comp, farm, packing = self.make_farm(factor=3)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                adder = Adder()
                result = adder.add(list(range(6)))
        assert result == [v + 1 for v in range(6)]
        # 6 single-element pieces coalesced by 3 -> 2 calls
        assert sum(w.calls for w in farm.workers) == 2
        assert packing.packed_messages == 2

    def test_unplug_restores_split(self):
        Adder, comp, farm, packing = self.make_farm(factor=3)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                pass
            # after undeploy the splitter is back to per-element pieces
            pieces = farm.splitter.split(([1, 2, 3],), {})
            assert len(pieces) == 3

    def test_invalid_factor(self):
        with pytest.raises(AdviceError):
            CommunicationPackingAspect(object(), 0)


class TestBatchedPacking:
    """Batch-mode packing: packs dispatch through the compiled batched
    entry — one BatchJoinPoint per pack, no merge_pieces required."""

    def make_farm(self, factor, duplicates=2, batch=None, merge=False):
        class Adder:
            def __init__(self):
                self.calls = 0

            def add(self, values):
                self.calls += 1
                return [v + 1 for v in values]

        weave(Adder)

        def split(args, kwargs):
            (values,) = args
            return [CallPiece(i, ([v],)) for i, v in enumerate(values)]

        def combine(results):
            return [v for r in results for v in r]

        def merge_pieces(pieces):
            merged = [v for p in pieces for v in p.args[0]]
            return CallPiece(pieces[0].index, (merged,))

        splitter = WorkSplitter(
            duplicates=duplicates,
            split=split,
            combine=combine,
            merge_pieces=merge_pieces if merge else None,
        )
        module = farm_module(
            splitter, "initialization(Adder.new(..))", "call(Adder.add(..))"
        )
        comp = Composition("farm", [module])
        packing = CommunicationPackingAspect(
            module.coordinator, factor, batch=batch
        )
        comp.plug(ParallelModule("packing", Concern.OPTIMISATION, [packing]))
        return Adder, comp, module.coordinator, packing

    def test_batch_mode_is_default_without_merge_pieces(self):
        Adder, comp, farm, packing = self.make_farm(factor=3)
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                adder = Adder()
                result = adder.add(list(range(6)))
        # combine sees per-ITEM results in original order (unlike merge
        # mode, which sees pack-granular results)
        assert result == [v + 1 for v in range(6)]
        assert packing.packed_messages == 2
        # the target method still ran once per item
        assert sum(w.calls for w in farm.workers) == 6

    def test_batch_pack_allocates_one_joinpoint(self):
        import repro.aop.plan as plan_mod
        from repro.aop.plan import BatchJoinPoint, JoinPoint

        counts = {"jp": 0, "batch": 0}

        class CountingJP(JoinPoint):
            __slots__ = ()

            def __init__(self, *args, **kwargs):
                counts["jp"] += 1
                super().__init__(*args, **kwargs)

        class CountingBatchJP(BatchJoinPoint):
            __slots__ = ()

            def __init__(self, *args, **kwargs):
                counts["batch"] += 1
                super().__init__(*args, **kwargs)

        Adder, comp, farm, packing = self.make_farm(factor=4, batch=True)
        saved = plan_mod.JoinPoint, plan_mod.BatchJoinPoint
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                adder = Adder()
                plan_mod.JoinPoint = CountingJP
                plan_mod.BatchJoinPoint = CountingBatchJP
                try:
                    result = adder.add(list(range(8)))
                finally:
                    plan_mod.JoinPoint, plan_mod.BatchJoinPoint = saved
        assert result == [v + 1 for v in range(8)]
        # 8 items / factor 4 -> 2 packs -> 2 BatchJoinPoints, plus the
        # single JoinPoint of the client's own split call
        assert counts["batch"] == 2
        assert counts["jp"] == 1

    def test_forced_batch_mode_beats_missing_merge_support(self):
        # a splitter WITH merge support can still opt into batch mode
        Adder, comp, farm, packing = self.make_farm(
            factor=2, batch=True, merge=True
        )
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Adder]):
                result = Adder().add(list(range(4)))
        assert result == [v + 1 for v in range(4)]
        assert sum(w.calls for w in farm.workers) == 4


class TestBatchedPipeline:
    """Packs traverse pipeline stages as single batched hops."""

    def test_pack_forwarded_batched_through_stages(self):
        from repro.parallel import pipeline_module

        class Stage:
            def __init__(self, offset=0):
                self.offset = offset
                self.calls = 0

            def work(self, value):
                self.calls += 1
                return value + self.offset + 1

        weave(Stage)

        def split(args, kwargs):
            (values,) = args
            return [CallPiece(i, (v,)) for i, v in enumerate(values)]

        splitter = WorkSplitter(
            duplicates=2,
            split=split,
            combine=lambda results: sorted(results),
            forward_args=lambda result, args, kwargs: ((result,), {}),
        )
        module = pipeline_module(
            splitter, "initialization(Stage.new(..))", "call(Stage.work(..))"
        )
        comp = Composition("pipe", [module])
        packing = CommunicationPackingAspect(module.coordinator, 2, batch=True)
        comp.plug(ParallelModule("packing", Concern.OPTIMISATION, [packing]))
        forward = module.aspects[1]
        with use_backend(ThreadBackend()):
            with comp.deployed(default_weaver, targets=[Stage]):
                result = Stage().work([10, 20, 30, 40])
        # two stages, each +1 -> every item gains 2
        assert result == [12, 22, 32, 42]
        # 4 items / factor 2 -> 2 packs, each forwarded once (stage1 ->
        # stage2), batched: 2 forwards instead of 4
        assert forward.forwards == 2


class TestObjectCache:
    def make_service(self):
        class Service:
            def __init__(self):
                self.calls = 0

            def compute(self, x):
                self.calls += 1
                return x * 2

        weave(Service)
        return Service

    def test_cache_hits_skip_target(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(cached_calls="call(Service.compute(..))")
        default_weaver.deploy(cache)
        service = Service.__new__(Service)
        service.calls = 0
        assert service.compute(3) == 6
        assert service.compute(3) == 6
        assert service.compute(4) == 8
        assert service.calls == 2
        assert cache.hits == 1 and cache.misses == 2
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_per_target_mode(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(
            cached_calls="call(Service.compute(..))", per_target=True
        )
        default_weaver.deploy(cache)
        a, b = Service(), Service()
        a.compute(3)
        b.compute(3)  # different target -> miss
        assert cache.misses == 2

    def test_capacity_limit(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(
            cached_calls="call(Service.compute(..))", max_entries=1
        )
        default_weaver.deploy(cache)
        service = Service()
        service.compute(1)
        service.compute(2)  # not cached (capacity)
        service.compute(2)
        assert service.calls == 3

    def test_clear_and_undeploy(self):
        Service = self.make_service()
        cache = ObjectCacheAspect(cached_calls="call(Service.compute(..))")
        default_weaver.deploy(cache)
        service = Service()
        service.compute(1)
        cache.clear()
        service.compute(1)
        assert cache.misses == 2


class TestReplication:
    def test_first_result_wins_in_sim(self):
        class Node:
            def __init__(self, delay):
                self.delay = delay

            def query(self, key):
                from repro.sim import current_simulator

                current_simulator().hold(self.delay)
                return (self.delay, key)

        weave(Node)

        # a fake partition exposing worker instances
        class FakePartition:
            pass

        partition = FakePartition()
        sim = Simulator()
        backend = SimBackend(sim)
        slow, fast = None, None
        out = {}

        def main():
            nonlocal slow, fast
            with use_backend(backend):
                slow = Node(5.0)
                fast = Node(1.0)
                partition.instances = [slow, fast]
                replication = ReplicationAspect(
                    partition, replicas=2, replicated_calls="call(Node.query(..))"
                )
                default_weaver.deploy(replication)
                out["result"] = slow.query("k")  # replica on fast node wins
                out["t"] = sim.now
                out["count"] = replication.replicated

        sim.spawn(main)
        sim.run()
        sim.shutdown()
        assert out["result"] == (1.0, "k")
        assert out["t"] == pytest.approx(1.0)
        assert out["count"] == 1

    def test_no_peers_proceeds_normally(self):
        class Node:
            def query(self, key):
                return key

        weave(Node)

        class FakePartition:
            instances = []

        replication = ReplicationAspect(
            FakePartition(), replicas=2, replicated_calls="call(Node.query(..))"
        )
        default_weaver.deploy(replication)
        assert Node().query("x") == "x"

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ReplicationAspect(object(), replicas=0)
