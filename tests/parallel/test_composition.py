"""Module composition: plug/unplug/exchange semantics."""

from __future__ import annotations

import pytest

from repro.aop import Aspect, before
from repro.aop.weaver import default_weaver
from repro.errors import DeploymentError
from repro.parallel import Composition, Concern, ParallelModule


def make_counting_module(name, concern=Concern.PARTITION):
    hits = []

    class Counting(Aspect):
        @before("call(Widget.work(..))")
        def count(self, jp):
            hits.append(name)

    module = ParallelModule(name, concern, [Counting()])
    return module, hits


def make_widget():
    class Widget:
        def work(self):
            return "done"

    return Widget


class TestParallelModule:
    def test_empty_module_rejected(self):
        with pytest.raises(DeploymentError):
            ParallelModule("empty", Concern.PARTITION, [])

    def test_module_deploys_all_aspects_atomically(self):
        Widget = make_widget()
        module, hits = make_counting_module("m1")
        module.deploy(default_weaver, targets=[Widget])
        assert module.is_deployed(default_weaver)
        Widget().work()
        assert hits == ["m1"]
        module.undeploy(default_weaver)
        Widget().work()
        assert hits == ["m1"]

    def test_failed_module_deploy_rolls_back(self):
        Widget = make_widget()

        class Good(Aspect):
            @before("call(Widget.work(..))")
            def ok(self, jp):
                pass

        class Bad(Aspect):
            @before("no_such_named_pointcut")
            def broken(self, jp):
                pass

        good = Good()
        module = ParallelModule("mixed", Concern.PARTITION, [good, Bad()])
        with pytest.raises(DeploymentError):
            module.deploy(default_weaver, targets=[Widget])
        assert not default_weaver.is_deployed(good)


class TestComposition:
    def test_deploy_undeploy_cycle(self):
        Widget = make_widget()
        m1, h1 = make_counting_module("partition")
        m2, h2 = make_counting_module("concurrency", Concern.CONCURRENCY)
        comp = Composition("combo", [m1, m2])
        with comp.deployed(default_weaver, targets=[Widget]):
            Widget().work()
        Widget().work()
        assert h1 == ["partition"] and h2 == ["concurrency"]

    def test_double_deploy_rejected(self):
        comp = Composition("c", [make_counting_module("m")[0]])
        comp.deploy(default_weaver)
        with pytest.raises(DeploymentError):
            comp.deploy(default_weaver)
        comp.undeploy()

    def test_plug_while_live_deploys_immediately(self):
        Widget = make_widget()
        m1, h1 = make_counting_module("m1")
        comp = Composition("c", [m1])
        with comp.deployed(default_weaver, targets=[Widget]):
            m2, h2 = make_counting_module("m2")
            comp.plug(m2)
            Widget().work()
        assert h2 == ["m2"]

    def test_duplicate_plug_rejected(self):
        m1, _ = make_counting_module("m")
        m2, _ = make_counting_module("m")
        comp = Composition("c", [m1])
        with pytest.raises(DeploymentError):
            comp.plug(m2)

    def test_unplug_while_live(self):
        Widget = make_widget()
        m1, h1 = make_counting_module("m1")
        m2, h2 = make_counting_module("m2")
        comp = Composition("c", [m1, m2])
        with comp.deployed(default_weaver, targets=[Widget]):
            comp.unplug("m2")
            Widget().work()
        assert h1 == ["m1"] and h2 == []

    def test_unplug_unknown_rejected(self):
        comp = Composition("c", [])
        with pytest.raises(DeploymentError):
            comp.unplug("ghost")

    def test_exchange_swaps_modules(self):
        Widget = make_widget()
        m1, h1 = make_counting_module("pipeline")
        m2, h2 = make_counting_module("farm")
        comp = Composition("c", [m1])
        with comp.deployed(default_weaver, targets=[Widget]):
            removed = comp.exchange("pipeline", m2)
            assert removed is m1
            Widget().work()
        assert h1 == [] and h2 == ["farm"]

    def test_by_concern_and_describe(self):
        m1, _ = make_counting_module("part", Concern.PARTITION)
        m2, _ = make_counting_module("conc", Concern.CONCURRENCY)
        comp = Composition("combo", [m1, m2])
        assert comp.by_concern(Concern.PARTITION) == [m1]
        assert comp.by_concern(Concern.DISTRIBUTION) == []
        text = comp.describe()
        assert "combo" in text and "part" in text and "conc" in text

    def test_module_lookup(self):
        m1, _ = make_counting_module("m1")
        comp = Composition("c", [m1])
        assert comp.module("m1") is m1
        with pytest.raises(DeploymentError):
            comp.module("nope")
