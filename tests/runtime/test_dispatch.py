"""Ambient dispatch tickets: propagation, registry, middleware routing."""

from __future__ import annotations

import gc
import threading

from repro.middleware import MppMiddleware, use_node
from repro.cluster import paper_testbed
from repro.parallel.concurrency import PooledSpawner
from repro.parallel.partition import DispatchContext
from repro.runtime import (
    ThreadBackend,
    current_dispatch,
    dispatch_id,
    find_dispatch,
    use_backend,
    use_dispatch,
)
from repro.runtime.dispatch import bind_dispatch
from repro.sim import Simulator


class TestAmbientTicket:
    def test_nesting_and_restoration(self):
        assert current_dispatch() is None
        outer, inner = DispatchContext("outer"), DispatchContext("inner")
        with use_dispatch(outer):
            assert current_dispatch() is outer
            assert dispatch_id() == outer.context_id
            with use_dispatch(inner):
                assert current_dispatch() is inner
            assert current_dispatch() is outer
        assert current_dispatch() is None

    def test_none_is_a_passthrough(self):
        with use_dispatch(None):
            assert current_dispatch() is None

    def test_registry_resolves_live_tickets_and_forgets_dead_ones(self):
        ctx = DispatchContext("registered")
        ctx_id = ctx.context_id
        assert find_dispatch(ctx_id) is ctx
        del ctx
        gc.collect()
        assert find_dispatch(ctx_id) is None
        assert find_dispatch(None) is None

    def test_bind_dispatch_captures_creation_context(self):
        ctx = DispatchContext("captured")
        with use_dispatch(ctx):
            bound = bind_dispatch(lambda: current_dispatch())
        assert bound() is ctx  # runs under the capture, not the caller
        plain = bind_dispatch(lambda: current_dispatch())
        assert plain() is None


class TestBackendPropagation:
    def test_thread_spawn_carries_ticket(self):
        backend = ThreadBackend()
        ctx = DispatchContext("spawned")
        with use_dispatch(ctx):
            handle = backend.spawn(lambda: current_dispatch())
        assert handle.join() is ctx

    def test_pooled_spawner_binds_per_task_not_per_worker(self):
        # pool workers are lazily created under the FIRST task's context
        # (shield_dispatch keeps them from capturing it); later tasks
        # must run under their own enqueueing context — and a task
        # enqueued OUTSIDE any dispatch must see none, not the retired
        # ticket the worker happened to be spawned under
        backend = ThreadBackend()
        pool = PooledSpawner(1)
        seen: list = []
        done = threading.Event()
        a, b = DispatchContext("task-a"), DispatchContext("task-b")
        with use_backend(backend):
            with use_dispatch(a):
                pool.spawn(backend, lambda: seen.append(current_dispatch()))
            with use_dispatch(b):
                pool.spawn(backend, lambda: seen.append(current_dispatch()))
            pool.spawn(
                backend,
                lambda: (seen.append(current_dispatch()), done.set()),
            )
        assert done.wait(5)
        pool.stop()
        assert seen == [a, b, None]


class TestShieldedLoops:
    def test_active_object_server_does_not_inherit_creator_ticket(self):
        # the server loop outlives the creating call: requests from
        # callers with no ambient ticket must not run under the (long
        # finished) creator's context
        from repro.runtime import ActiveObject

        class Probe:
            def who(self):
                return current_dispatch()

        creator = DispatchContext("creator")
        caller = DispatchContext("caller")
        with use_backend(ThreadBackend()):
            with use_dispatch(creator):
                active = ActiveObject(Probe())
            try:
                assert active.proxy().who().result(timeout=5) is None
                # ...while each request runs under ITS caller's ticket
                with use_dispatch(caller):
                    future = active.proxy().who()
                assert future.result(timeout=5) is caller
            finally:
                active.stop()
                active.join()


class TestMiddlewareContextRouting:
    def test_request_carries_ticket_id_and_server_runs_under_it(self):
        sim = Simulator()
        cluster = paper_testbed(sim)
        mpp = MppMiddleware(cluster)

        class Probe:
            def observe(self):
                ctx = current_dispatch()
                return ctx.context_id if ctx is not None else None

        out = {}

        def client():
            ref = mpp.export(Probe(), cluster.node(1))
            ctx = DispatchContext("wire")
            with use_node(cluster.head), use_dispatch(ctx):
                out["observed"] = mpp.invoke(ref, "observe")
                out["batched"] = mpp.invoke_batch(ref, "observe", [((), {})])
            out["ticket"] = ctx.context_id
            out["remote"] = ctx.remote_dispatches

        try:
            sim.spawn(client, name="client")
            sim.run()
        finally:
            mpp.shutdown()
            sim.shutdown()
        # the servant-side activity ran under the originating ticket...
        assert out["observed"] == out["ticket"]
        assert out["batched"] == [out["ticket"]]
        # ...and both dispatches were attributed to it
        assert out["remote"] == 2
