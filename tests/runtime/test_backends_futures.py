"""Execution backends, futures, active objects — both modes."""

from __future__ import annotations

import pytest

from repro.errors import FutureError
from repro.runtime import (
    ActiveObject,
    Future,
    FutureGroup,
    SimBackend,
    ThreadBackend,
    current_backend,
    use_backend,
)
from repro.sim import Simulator


class TestThreadBackend:
    def test_spawn_and_join(self):
        backend = ThreadBackend()
        handle = backend.spawn(lambda: 21 * 2)
        assert handle.join() == 42
        assert handle.done

    def test_join_reraises(self):
        backend = ThreadBackend()

        def boom():
            raise ValueError("thread boom")

        handle = backend.spawn(boom)
        with pytest.raises(ValueError, match="thread boom"):
            handle.join()

    def test_lock_event_queue_surfaces(self):
        backend = ThreadBackend()
        lock = backend.make_lock()
        with lock:
            pass
        evt = backend.make_event()
        assert not evt.is_set
        evt.set("v")
        assert evt.wait(0.1) and evt.value == "v"
        q = backend.make_queue()
        q.put(1)
        assert q.get() == 1
        with pytest.raises(TimeoutError):
            q.get(timeout=0.01)

    def test_current_backend_default_is_threads(self):
        assert isinstance(current_backend(), ThreadBackend)

    def test_use_backend_scopes_per_thread(self):
        backend = ThreadBackend()
        with use_backend(backend):
            assert current_backend() is backend
        assert current_backend() is not backend


class TestSimBackend:
    def test_spawn_runs_on_virtual_time(self):
        sim = Simulator()
        backend = SimBackend(sim)
        out = []

        def main():
            handle = backend.spawn(lambda: (sim.hold(2.0), sim.now)[1])
            out.append(handle.join())

        sim.spawn(main)
        sim.run()
        assert out == [2.0]

    def test_nested_spawn_inherits_backend(self):
        sim = Simulator()
        backend = SimBackend(sim)
        seen = []

        def inner():
            seen.append(current_backend() is backend)

        def outer():
            backend.spawn(inner).join()

        sim.spawn(lambda: backend.spawn(outer).join())
        sim.run()
        assert seen == [True]

    def test_primitive_factories_are_sim_flavoured(self):
        sim = Simulator()
        backend = SimBackend(sim)
        from repro.sim import SimEvent, SimLock, SimQueue

        assert isinstance(backend.make_lock(), SimLock)
        assert isinstance(backend.make_event(), SimEvent)
        assert isinstance(backend.make_queue(), SimQueue)


class TestFuture:
    def test_set_and_get_threads(self):
        backend = ThreadBackend()
        with use_backend(backend):
            future = Future()
            backend.spawn(lambda: future.set_result(99))
            assert future.result(timeout=5) == 99
            assert future.resolved

    def test_double_resolve_rejected(self):
        with use_backend(ThreadBackend()):
            future = Future.completed(1)
            with pytest.raises(FutureError):
                future.set_result(2)
            with pytest.raises(FutureError):
                future.set_exception(ValueError())

    def test_exception_propagates(self):
        with use_backend(ThreadBackend()):
            future = Future()
            future.set_exception(RuntimeError("fail"))
            with pytest.raises(RuntimeError, match="fail"):
                future.result()

    def test_timeout(self):
        with use_backend(ThreadBackend()):
            future = Future()
            with pytest.raises(FutureError, match="timed out"):
                future.result(timeout=0.01)

    def test_wait_by_necessity_in_sim(self):
        sim = Simulator()
        backend = SimBackend(sim)
        out = []

        def main():
            with use_backend(backend):
                future = Future(name="answer")
                backend.spawn(lambda: (sim.hold(3.0), future.set_result("late"))[0])
                out.append((future.result(), sim.now))

        sim.spawn(main)
        sim.run()
        assert out == [("late", 3.0)]

    def test_run_helper_resolves(self):
        with use_backend(ThreadBackend()):
            future = Future()
            future.run(lambda: 7)
            assert future.result() == 7

    def test_run_helper_records_exception(self):
        with use_backend(ThreadBackend()):
            future = Future()
            with pytest.raises(ValueError):
                future.run(lambda: (_ for _ in ()).throw(ValueError("x")))
            with pytest.raises(ValueError):
                future.result()


class TestFutureGroup:
    def test_results_in_add_order(self):
        sim = Simulator()
        backend = SimBackend(sim)
        out = []

        def main():
            with use_backend(backend):
                group = FutureGroup()
                for i, delay in enumerate([3.0, 1.0, 2.0]):
                    future = group.new(name=f"f{i}")
                    backend.spawn(
                        lambda f=future, d=delay, i=i: (
                            sim.hold(d),
                            f.set_result(i),
                        )
                    )
                out.append(group.results())
                out.append(sim.now)

        sim.spawn(main)
        sim.run()
        assert out == [[0, 1, 2], 3.0]

    def test_of_builder_and_len(self):
        with use_backend(ThreadBackend()):
            group = FutureGroup.of([Future.completed(i) for i in range(4)])
            assert len(group) == 4
            assert group.results() == [0, 1, 2, 3]


class TestActiveObject:
    class Counter:
        def __init__(self):
            self.value = 0

        def add(self, n):
            self.value += n
            return self.value

        def fail(self):
            raise RuntimeError("servant error")

    def test_requests_serialised_in_order_sim(self):
        sim = Simulator()
        backend = SimBackend(sim)
        out = []

        def main():
            with use_backend(backend):
                active = ActiveObject(self.Counter())
                futures = [active.send("add", 1) for _ in range(5)]
                out.append([f.result() for f in futures])
                active.stop()
                active.join()

        sim.spawn(main)
        sim.run()
        assert out == [[1, 2, 3, 4, 5]]

    def test_proxy_attribute_access(self):
        sim = Simulator()
        backend = SimBackend(sim)
        out = []

        def main():
            with use_backend(backend):
                active = ActiveObject(self.Counter())
                proxy = active.proxy()
                out.append(proxy.add(10).result())
                with pytest.raises(AttributeError):
                    proxy.no_such_method
                active.stop()

        sim.spawn(main)
        sim.run()
        assert out == [10]

    def test_exception_delivered_via_future(self):
        sim = Simulator()
        backend = SimBackend(sim)
        caught = []

        def main():
            with use_backend(backend):
                active = ActiveObject(self.Counter())
                future = active.send("fail")
                try:
                    future.result()
                except RuntimeError:
                    caught.append("yes")
                active.stop()

        sim.spawn(main)
        sim.run()
        assert caught == ["yes"]

    def test_send_after_stop_rejected(self):
        from repro.errors import BackendError

        sim = Simulator()
        backend = SimBackend(sim)
        caught = []

        def main():
            with use_backend(backend):
                active = ActiveObject(self.Counter())
                active.stop()
                try:
                    active.send("add", 1)
                except BackendError:
                    caught.append("rejected")

        sim.spawn(main)
        sim.run()
        assert caught == ["rejected"]
