"""The out-of-process backend: worker lifecycle, registry wiring, and
the fail-fast contract when a resident worker dies with calls in
flight.  The worker-death regression is the headline: killing a worker
mid-split must latch the call's collector with a useful traceback,
undeploy cleanly, and leak no child processes.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.api import ParallelApp, StackSpec
from repro.api.registry import BACKENDS
from repro.errors import (
    BackendError,
    DeploymentError,
    MiddlewareError,
    RemoteError,
    SerializationError,
    WorkerCrashed,
)
from repro.middleware.proc import ProcMiddleware
from repro.runtime.procbackend import ProcessBackend, ProcWorker
from repro.parallel import WorkSplitter
from repro.parallel.partition import CallPiece


def wait_until(cond, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


def _wait_gate(path, timeout=10.0):
    if path is None:
        return
    deadline = time.time() + timeout
    while time.time() < deadline and not os.path.exists(path):
        time.sleep(0.01)


class Doubler:
    def bump(self, values):
        return [v * 2 for v in values]


class GatedDoubler:
    gate_path: str | None = None

    def bump(self, values):
        _wait_gate(GatedDoubler.gate_path)
        return [v * 2 for v in values]


class Faulty:
    def explode(self, x):
        raise ValueError(f"deliberate failure on {x}")


class UnpicklableResult:
    def make(self):
        return lambda: None  # lambdas never pickle


@pytest.fixture(autouse=True)
def clear_gates():
    GatedDoubler.gate_path = None
    yield
    GatedDoubler.gate_path = None


class TestProcessBackendBasics:
    def test_registry_resolves_process_backend(self):
        backend = BACKENDS.get("process")(cluster=None)
        assert isinstance(backend, ProcessBackend)
        assert backend.name == "process"

    def test_factory_rejects_simulated_clusters(self):
        with pytest.raises(BackendError, match="simulated cluster"):
            BACKENDS.get("process")(cluster=object())

    def test_spec_rejects_cluster_and_placement(self):
        with pytest.raises(DeploymentError, match="simulated cluster"):
            StackSpec(
                target=Doubler,
                work="bump",
                strategy="none",
                backend="process",
                cluster=object(),
            ).validate()
        with pytest.raises(DeploymentError, match="placement"):
            StackSpec(
                target=Doubler,
                work="bump",
                strategy="none",
                backend="process",
                placement=object(),
            ).validate()

    def test_spec_rejects_mismatched_pairings(self):
        with pytest.raises(DeploymentError, match="backend='process'"):
            StackSpec(
                target=Doubler,
                work="bump",
                strategy="none",
                middleware="process",
                backend="thread",
            ).validate()
        with pytest.raises(DeploymentError, match="simulated transport"):
            StackSpec(
                target=Doubler,
                work="bump",
                strategy="none",
                middleware="rmi",
                backend="process",
            ).validate()

    def test_backend_auto_resolves_from_process_middleware(self):
        app = ParallelApp(
            StackSpec(
                target=Doubler,
                work="bump",
                strategy="none",
                middleware="process",
            )
        )
        try:
            assert isinstance(app.backend, ProcessBackend)
        finally:
            app.shutdown()

    def test_wall_clock_semantics_inherited_from_threads(self):
        backend = ProcessBackend()
        t0 = backend.now()
        time.sleep(0.01)
        assert backend.now() - t0 >= 0.005  # monotonic wall seconds


class TestProcMiddlewareDirect:
    def test_export_invoke_roundtrip(self):
        middleware = ProcMiddleware()
        try:
            ref = middleware.export(Doubler())
            assert middleware.invoke(ref, "bump", ([1, 2],)) == [2, 4]
            assert middleware.calls == 1
        finally:
            middleware.shutdown()

    def test_remote_exception_carries_remote_traceback(self):
        middleware = ProcMiddleware()
        try:
            ref = middleware.export(Faulty())
            with pytest.raises(RemoteError) as err:
                middleware.invoke(ref, "explode", (7,))
            assert "deliberate failure on 7" in str(err.value)
            assert isinstance(err.value.cause, ValueError)
            assert "deliberate failure" in err.value.cause.remote_traceback
        finally:
            middleware.shutdown()

    def test_unpicklable_argument_fails_at_send_site(self):
        middleware = ProcMiddleware()
        try:
            ref = middleware.export(Doubler())
            with pytest.raises(
                SerializationError, match="RequestEnvelope.args"
            ):
                middleware.invoke(ref, "bump", (lambda: None,))
            # the worker never saw the bad frame: still serving fine
            assert middleware.invoke(ref, "bump", ([3],)) == [6]
        finally:
            middleware.shutdown()

    def test_unpicklable_result_degrades_to_error_reply(self):
        middleware = ProcMiddleware()
        try:
            ref = middleware.export(UnpicklableResult())
            with pytest.raises(RemoteError) as err:
                middleware.invoke(ref, "make", ())
            assert isinstance(err.value.cause, SerializationError)
            # and the worker survives to serve the next call
            with pytest.raises(RemoteError):
                middleware.invoke(ref, "make", ())
        finally:
            middleware.shutdown()

    def test_unpicklable_servant_fails_at_export(self):
        middleware = ProcMiddleware()
        bad = Doubler()
        bad.handle = lambda: None  # instance state that refuses to pickle
        try:
            with pytest.raises(SerializationError):
                middleware.export(bad)
            # the servant is encoded BEFORE the fork: the failed export
            # left no worker process behind to leak
            assert middleware.backend.workers == []
        finally:
            middleware.shutdown()
        assert not multiprocessing.active_children()

    def test_one_worker_per_servant(self):
        middleware = ProcMiddleware()
        try:
            refs = [middleware.export(Doubler()) for _ in range(3)]
            assert len(middleware.backend.workers) == 3
            pids = {middleware.worker_of(ref).pid for ref in refs}
            assert len(pids) == 3  # genuinely distinct processes
            assert os.getpid() not in pids
        finally:
            middleware.shutdown()
        assert middleware.backend.live_workers == 0


class TestWorkerCrash:
    def test_dead_worker_raises_instead_of_hanging(self):
        middleware = ProcMiddleware()
        try:
            ref = middleware.export(Doubler())
            worker = middleware.worker_of(ref)
            worker.kill()
            wait_until(lambda: not worker.alive)
            with pytest.raises(WorkerCrashed) as err:
                middleware.invoke(ref, "bump", ([1],))
            message = str(err.value)
            assert str(worker.pid) in message
            assert "exitcode" in message
            assert middleware.worker_crashes == 1
        finally:
            middleware.shutdown()

    def test_crash_mid_reply_wait_raises(self, tmp_path):
        gate = str(tmp_path / "gate")
        GatedDoubler.gate_path = gate
        middleware = ProcMiddleware()
        try:
            ref = middleware.export(GatedDoubler())
            worker = middleware.worker_of(ref)
            import threading

            outcome: dict = {}

            def call():
                try:
                    outcome["result"] = middleware.invoke(ref, "bump", ([1],))
                except Exception as exc:  # noqa: BLE001 - inspected below
                    outcome["error"] = exc

            thread = threading.Thread(target=call)
            thread.start()
            wait_until(lambda: worker.alive and thread.is_alive())
            time.sleep(0.1)  # let the request reach the parked worker
            worker.kill()
            thread.join(timeout=10)
            assert not thread.is_alive(), "reply wait hung on a dead worker"
            assert isinstance(outcome.get("error"), WorkerCrashed)
            assert "awaiting its reply" in str(outcome["error"])
        finally:
            middleware.shutdown()

    def test_worker_death_mid_split_fails_fast_and_cleans_up(self, tmp_path):
        """The regression: kill a resident worker mid-split; the call's
        collector latches the failure (useful message, not a hang), the
        deployment undeploys cleanly, and no child process leaks."""
        gate = str(tmp_path / "gate")
        GatedDoubler.gate_path = gate
        app = ParallelApp(
            StackSpec(
                target=GatedDoubler,
                work="bump",
                # a REAL two-piece data split: each pinned dispatcher
                # parks one piece at its own worker, so the victim is
                # guaranteed to hold an in-flight call when killed
                splitter=WorkSplitter(
                    duplicates=2,
                    split=lambda args, kwargs: [
                        CallPiece(0, (args[0][:1],)),
                        CallPiece(1, (args[0][1:],)),
                    ],
                    combine=lambda rs: [v for r in rs for v in r],
                ),
                strategy="dynamic-farm",
                backend="process",
            )
        )
        with app:
            app.start()
            doomed = app.submit([1, 11])
            workers = app.middleware.backend.workers
            # wait until BOTH workers have a round-trip in flight (the
            # parent-side pipe lock is held for the whole round-trip and
            # the servants are parked on the gate) — the demand-driven
            # queue would otherwise be free to route every piece to the
            # survivor and mask the crash
            assert wait_until(lambda: all(w.lock.locked() for w in workers))
            victim = workers[0]
            victim.kill()
            open(gate, "w").close()  # release the survivor promptly
            with pytest.raises(RemoteError) as err:
                doomed.result(timeout=20)
            message = str(err.value)
            assert str(victim.pid) in message
            assert "fail fast" in message  # the obituary, not a timeout
        # clean undeploy: every worker (dead and alive) is stopped...
        assert wait_until(lambda: app.backend.live_workers == 0)
        # ...and nothing leaked at the OS level
        assert wait_until(lambda: not multiprocessing.active_children())

    def test_stop_is_idempotent_and_safe_after_death(self):
        worker = ProcWorker(0)
        assert worker.alive
        worker.kill()
        wait_until(lambda: not worker.alive)
        worker.stop()
        worker.stop()  # second stop is a no-op
        assert not worker.alive


class TestRegistryCatalogue:
    def test_unknown_backend_lists_full_catalogue(self):
        # historically this error listed only whatever had been imported
        # so far; the registry bootstrap now guarantees the full set
        from repro.api.registry import UnknownNameError

        with pytest.raises(UnknownNameError) as err:
            BACKENDS.get("does-not-exist")
        for name in ("thread", "sim", "process"):
            assert name in err.value.known
        assert "process" in str(err.value)
