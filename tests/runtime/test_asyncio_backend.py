"""Unit coverage for the asyncio execution backend: the loop clock,
the dual-face event, coroutine bridging, fire-and-forget detachment,
the base backend's awaitable rejection, registry/spec rules, and the
``"loop"`` fault site."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import StackSpec
from repro.api.registry import BACKENDS
from repro.errors import BackendError, DeploymentError
from repro.faults.schedule import FAULT_SITES, FaultEvent
from repro.runtime import AsyncioBackend, AsyncioEvent, ThreadBackend
from repro.runtime.futures import Future


@pytest.fixture()
def backend():
    return AsyncioBackend()


class TestLoopClock:
    def test_now_is_the_loop_clock(self, backend):
        assert abs(backend.now() - backend.loop.time()) < 0.5

    def test_now_advances(self, backend):
        t0 = backend.now()
        time.sleep(0.01)
        assert backend.now() > t0


class TestAsyncioEvent:
    def test_make_event_is_dual_face(self, backend):
        event = backend.make_event(name="gate")
        assert isinstance(event, AsyncioEvent)
        assert not event.is_set
        event.set("payload")
        assert event.is_set
        assert event.value == "payload"
        assert event.wait(timeout=1.0)
        event.clear()
        assert not event.is_set
        assert event.value is None

    def test_set_wakes_a_loop_side_awaiter(self, backend):
        event = backend.make_event(name="gate")

        async def parked():
            await event.wait_async()
            return "woken"

        # bridge() owns starting the loop; the await parks loop-side
        future = backend.bridge(parked())
        assert not future.resolved
        event.set()
        assert future.result(timeout=5.0) == "woken"


class TestBridge:
    def test_plain_value_resolves_without_the_loop(self, backend):
        started = backend.tasks_started
        future = backend.bridge(42)
        assert future.resolved
        assert future.result() == 42
        assert backend.tasks_started == started  # no loop round-trip

    def test_coroutine_runs_as_a_loop_task(self, backend):
        async def produce():
            await asyncio.sleep(0.001)
            return "done"

        future = backend.bridge(produce())
        assert isinstance(future, Future)
        assert future.result(timeout=5.0) == "done"
        assert backend.tasks_started >= 1
        assert backend.tasks_finished >= 1

    def test_exceptions_cross_the_bridge(self, backend):
        async def explode():
            raise ValueError("loop-side failure")

        with pytest.raises(ValueError, match="loop-side failure"):
            backend.bridge(explode()).result(timeout=5.0)

    def test_pack_list_gathers_concurrently_in_order(self, backend):
        async def item(i):
            await asyncio.sleep(0.01)
            return i

        # mixed pack: plain values keep their slots, awaitables gather
        t0 = time.perf_counter()
        out = backend.finish([item(0), "plain", item(2), item(3)])
        elapsed = time.perf_counter() - t0
        assert out == [0, "plain", 2, 3]
        # concurrent, not sequential: 3 x 10ms awaits well under 30ms
        assert elapsed < 0.25

    def test_finish_passes_plain_values_through(self, backend):
        assert backend.finish("untouched") == "untouched"
        assert backend.finish([1, 2]) == [1, 2]

    def test_detach_schedules_and_forgets(self, backend):
        done = []

        async def work():
            done.append(True)

        backend.detach(work())
        deadline = time.time() + 5.0
        while time.time() < deadline and not done:
            time.sleep(0.005)
        assert done == [True]


class TestBaseBackendRejection:
    def test_thread_finish_rejects_coroutines(self):
        async def orphan():
            return 1

        with pytest.raises(BackendError, match="backend='asyncio'"):
            ThreadBackend().finish(orphan())

    def test_thread_finish_rejects_packs_with_awaitables(self):
        async def orphan():
            return 1

        with pytest.raises(BackendError, match="backend='asyncio'"):
            ThreadBackend().finish([1, orphan()])

    def test_thread_finish_passes_plain_values(self):
        assert ThreadBackend().finish([1, 2, 3]) == [1, 2, 3]


class TestRegistryAndSpec:
    def test_registered_under_asyncio(self):
        import repro.runtime  # noqa: F401 - triggers registration

        made = BACKENDS.get("asyncio")()
        assert isinstance(made, AsyncioBackend)
        assert made.name == "asyncio"

    def test_factory_rejects_clusters(self):
        import repro.runtime  # noqa: F401

        with pytest.raises(BackendError, match="simulated cluster"):
            BACKENDS.get("asyncio")(cluster=object())

    def _spec(self, **overrides):
        class Io:
            async def ping(self, x):
                return x

        fields = dict(target=Io, work="ping", strategy="none", backend="asyncio")
        fields.update(overrides)
        return StackSpec(**fields)

    def test_spec_rejects_cluster(self):
        with pytest.raises(DeploymentError, match="simulated cluster"):
            self._spec(cluster=object()).validate()

    def test_spec_rejects_placement(self):
        with pytest.raises(DeploymentError, match="placement"):
            self._spec(placement=object()).validate()

    def test_spec_rejects_middlewares(self):
        with pytest.raises(DeploymentError, match="pairs only with middleware"):
            self._spec(middleware="rmi", cluster=None).validate()

    def test_spec_allows_native_oneway(self):
        # middleware-less oneway is legal ONLY on asyncio (the loop is
        # the transport); the thread backend still rejects it
        self._spec(oneway=("ping",)).validate()
        with pytest.raises(DeploymentError, match="distribution middleware"):
            self._spec(backend="thread", oneway=("ping",)).validate()


class TestLoopFaultSite:
    def test_loop_is_a_known_site(self):
        assert "loop" in FAULT_SITES
        assert FaultEvent("drop_reply", site="loop").site == "loop"

    def test_delay_reply_is_awaitable(self, backend):
        from repro.faults import FaultSchedule
        from repro.faults.schedule import use_faults

        async def quick():
            return "v"

        schedule = FaultSchedule(
            [FaultEvent("delay_reply", site="loop", on_call=1, delay=0.05)]
        )
        with use_faults(schedule):
            t0 = time.perf_counter()
            assert backend.finish(quick()) == "v"
            assert time.perf_counter() - t0 >= 0.04
        assert schedule.fired_count() == 1
