"""Admission-control units: deadlines, the bounded slot table, and the
three overflow policies, plus the envelope→ticket linkage."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import AdmissionRejected, CallShed, DeadlineExceeded
from repro.parallel.partition.base import DispatchContext
from repro.runtime import (
    AdmissionController,
    Deadline,
    ThreadBackend,
    current_envelope,
    use_backend,
    use_envelope,
)


class TestDeadline:
    def test_counts_down_on_the_given_clock(self):
        clock = {"t": 100.0}
        deadline = Deadline(5.0, clock=lambda: clock["t"])
        assert not deadline.expired
        assert deadline.remaining() == 5.0
        clock["t"] = 104.0
        assert deadline.remaining() == pytest.approx(1.0)
        clock["t"] = 106.0
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_deadline_exceeded_with_context(self):
        clock = {"t": 0.0}
        deadline = Deadline(1.0, clock=lambda: clock["t"])
        deadline.check("early")  # within budget: no-op
        clock["t"] = 2.0
        with pytest.raises(DeadlineExceeded, match="1.0s exceeded mid-hop"):
            deadline.check("mid-hop", trace={"spans": []})

    def test_backend_clocks_feed_deadlines(self):
        backend = ThreadBackend()
        deadline = Deadline(60.0, clock=backend.now)
        assert not deadline.expired
        assert 59.0 < deadline.remaining() <= 60.0


class TestPolicies:
    def controller(self, limit, policy):
        return AdmissionController(
            limit=limit, policy=policy, backend=ThreadBackend(), name="t"
        )

    def test_unbounded_controller_never_blocks(self):
        ctrl = AdmissionController(backend=ThreadBackend())
        slots = [ctrl.admit(name=f"c{i}") for i in range(64)]
        assert ctrl.admitted == 64
        for slot in slots:
            slot.release()
        assert ctrl.admitted == 0
        assert ctrl.peak_admitted == 64

    def test_fail_policy_rejects_beyond_limit(self):
        ctrl = self.controller(2, "fail")
        first, second = ctrl.admit(name="a"), ctrl.admit(name="b")
        with pytest.raises(AdmissionRejected, match="2 calls already"):
            ctrl.admit(name="c")
        assert ctrl.rejected == 1
        first.release()
        third = ctrl.admit(name="c")  # a freed slot admits again
        assert ctrl.admitted == 2
        second.release(), third.release()

    def test_release_is_idempotent(self):
        ctrl = self.controller(1, "fail")
        slot = ctrl.admit(name="a")
        slot.release()
        slot.release()  # double release must not free a phantom slot
        b = ctrl.admit(name="b")
        with pytest.raises(AdmissionRejected):
            ctrl.admit(name="c")
        b.release()

    def test_shed_oldest_cancels_the_oldest_live_call(self):
        ctrl = self.controller(2, "shed-oldest")
        oldest = ctrl.admit(name="oldest")
        middle = ctrl.admit(name="middle")
        newest = ctrl.admit(name="newest")  # sheds `oldest`, admits
        assert oldest.cancelled
        assert isinstance(oldest.cancel_cause, CallShed)
        assert "oldest" in str(oldest.cancel_cause)
        assert not middle.cancelled and not newest.cancelled
        assert ctrl.shed_calls == 1
        assert ctrl.admitted == 2

    def test_shed_cancellation_reaches_an_attached_ticket(self):
        ctrl = self.controller(1, "shed-oldest")
        with use_backend(ThreadBackend()):
            slot = ctrl.admit(name="victim")
            ctx = DispatchContext("victim.call", expected=2)
            slot.attach(ctx)
            assert slot.ticket_id == ctx.context_id
            ctrl.admit(name="newcomer")
            assert ctx.cancelled
            with pytest.raises(CallShed):
                ctx.wait(timeout=1)  # the latched collector fails fast

    def test_cancel_before_attach_cancels_ticket_at_attach_time(self):
        ctrl = self.controller(1, "shed-oldest")
        with use_backend(ThreadBackend()):
            slot = ctrl.admit(name="early-victim")
            ctrl.admit(name="newcomer")  # shed before any ticket opened
            assert slot.cancelled
            ctx = DispatchContext("late.call")
            slot.attach(ctx)  # the race is closed at attach time
            assert ctx.cancelled
            with pytest.raises(CallShed):
                ctx.check_deadline()

    def test_block_policy_hands_slot_to_fifo_waiter(self):
        ctrl = self.controller(1, "block")
        held = ctrl.admit(name="holder")
        order: list[str] = []

        def blocked_submitter():
            slot = ctrl.admit(name="waiter")
            order.append("admitted")
            slot.release()

        thread = threading.Thread(target=blocked_submitter)
        thread.start()
        deadline = time.time() + 2
        while ctrl.waiting < 1 and time.time() < deadline:
            time.sleep(0.005)
        assert ctrl.waiting == 1
        assert order == []  # genuinely parked
        held.release()  # direct hand-off wakes the waiter
        thread.join(timeout=2)
        assert order == ["admitted"]
        assert ctrl.admitted == 0

    def test_blocked_admission_gives_up_when_deadline_drains(self):
        ctrl = self.controller(1, "block")
        held = ctrl.admit(name="holder")
        deadline = Deadline(0.05, clock=time.monotonic)
        with pytest.raises(AdmissionRejected, match="ran out of deadline"):
            ctrl.admit(deadline=deadline, name="impatient")
        assert ctrl.waiting == 0  # the timed-out waiter was dequeued
        held.release()

    def test_delivered_slot_cannot_be_cancelled_or_shed(self):
        # check-then-act closure: finish() atomically closes the slot
        # for delivery, so a shed racing completion is a no-op — and a
        # cancel that won first makes finish() return the cause
        ctrl = self.controller(1, "shed-oldest")
        done = ctrl.admit(name="done")
        assert done.finish() is None
        ctrl.admit(name="newcomer")  # must not shed the delivered call
        assert not done.cancelled
        shed_first = AdmissionController(
            limit=None, backend=ThreadBackend()
        ).admit(name="victim")
        shed_first.cancel(CallShed("gone"))
        cause = shed_first.finish()
        assert isinstance(cause, CallShed)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionController(limit=0)
        with pytest.raises(ValueError, match="overflow policy"):
            AdmissionController(limit=1, policy="panic")


class TestEnvelope:
    def test_envelope_is_ambient_and_nests(self):
        ctrl = AdmissionController(backend=ThreadBackend())
        outer, inner = ctrl.admit(name="outer"), ctrl.admit(name="inner")
        assert current_envelope() is None
        with use_envelope(outer):
            assert current_envelope() is outer
            with use_envelope(inner):
                assert current_envelope() is inner
            assert current_envelope() is outer
        assert current_envelope() is None

    def test_none_envelope_is_a_passthrough(self):
        with use_envelope(None):
            assert current_envelope() is None

    def test_attach_adopts_the_slot_deadline(self):
        ctrl = AdmissionController(backend=ThreadBackend())
        deadline = Deadline(30.0, clock=time.monotonic)
        slot = ctrl.admit(deadline=deadline, name="timed")
        with use_backend(ThreadBackend()):
            ctx = DispatchContext("timed.call")
            slot.attach(ctx)
            assert ctx.deadline is deadline
            ctx.check_deadline()  # plenty of budget: no-op
