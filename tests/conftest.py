"""Shared fixtures.

The default weaver patches classes globally; ``clean_weaver`` guarantees
every test leaves no aspects deployed and no classes woven behind.
"""

from __future__ import annotations

import pytest

from repro.aop.weaver import default_weaver


@pytest.fixture(autouse=True)
def clean_weaver():
    """Reset the global weaver before and after every test."""
    default_weaver.reset()
    yield default_weaver
    default_weaver.reset()
